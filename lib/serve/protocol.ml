(* difftrace-rpc/1 — total encode/decode over the obs JSON machinery.
   See protocol.mli for the wire contract; test/serve.t is the
   executable transcript of it. *)

module Json = Difftrace_obs.Telemetry.Json
module Session = Difftrace_core.Session
module Config = Difftrace_core.Config
module Engine = Difftrace_core.Engine
module Filter = Difftrace_filter.Filter
module Attributes = Difftrace_fca.Attributes
module Linkage = Difftrace_cluster.Linkage

let version = 1
let version_string = Printf.sprintf "difftrace-rpc/%d" version
let max_line_bytes = 1 lsl 20

let ( let* ) = Result.bind

(* --- typed surface --------------------------------------------------- *)

type config_params = {
  pc_filter : string;
  pc_custom : string list;
  pc_attrs : string;
  pc_k : int;
  pc_linkage : string;
  pc_engine : string option;
  pc_mode : string;
}

let default_config =
  { pc_filter = "11.mpiall";
    pc_custom = [];
    pc_attrs = "sing.noFreq";
    pc_k = 10;
    pc_linkage = "ward";
    pc_engine = None;
    pc_mode = "exact" }

let config_of_params ~default_engine p =
  try
    let engine =
      match p.pc_engine with
      | None -> default_engine
      | Some s -> Engine.of_string s
    in
    Ok
      (Config.default
      |> Config.with_filter (Filter.of_spec ~custom:p.pc_custom p.pc_filter)
      |> Config.with_attrs (Attributes.of_name p.pc_attrs)
      |> Config.with_k p.pc_k
      |> Config.with_linkage (Linkage.method_of_string p.pc_linkage)
      |> Config.with_engine engine
      |> Config.with_mode (Config.mode_of_string p.pc_mode))
  with Invalid_argument m -> Error (Session.Invalid m)

type workload_spec = {
  ws_workload : string;
  ws_np : int;
  ws_seed : int;
  ws_fault : string;
  ws_all_images : bool;
}

type source_spec =
  | Src_run of string
  | Src_archive of { dir : string; salvage : bool }
  | Src_workload of workload_spec
  | Src_ingest of { path : string; frontend : string }

type vdiff_run_spec = {
  vs_name : string;
  vs_source : source_spec;
  vs_axes : (string * string) list;
  vs_bad : bool;
}

type call =
  | Record of {
      rq_workload : workload_spec;
      rq_name : string option;
      rq_out : string option;
      rq_v1 : bool;
    }
  | Compare of {
      rq_normal : source_spec;
      rq_faulty : source_spec;
      rq_config : config_params;
      rq_diffnlr : string option;
    }
  | Analyze of {
      rq_normal : source_spec;
      rq_faulty : source_spec;
      rq_config : config_params;
      rq_diffnlr : string option;
    }
  | Triage of {
      rq_subject : source_spec;
      rq_config : config_params;
      rq_limit : int;
    }
  | Query of {
      rq_q : string;
      rq_source : source_spec;
      rq_against : source_spec option;
      rq_config : config_params;
    }
  | Vdiff of {
      rq_runs : vdiff_run_spec list;
      rq_trace : string option;
      rq_config : config_params;
    }
  | Status
  | Subscribe of { rq_events : bool }
  | Shutdown

type request = { req_id : string; req_call : call }

let method_name = function
  | Record _ -> "record"
  | Compare _ -> "compare"
  | Analyze _ -> "analyze"
  | Triage _ -> "triage"
  | Query _ -> "query"
  | Vdiff _ -> "vdiff"
  | Status -> "status"
  | Subscribe _ -> "subscribe"
  | Shutdown -> "shutdown"

type payload =
  | P_record of {
      pr_files : int;
      pr_traces : int;
      pr_events : int;
      pr_hung : int;
      pr_run : string option;
      pr_output : string;
    }
  | P_report of {
      pr_style : [ `Compare | `Analyze ];
      pr_bscore : float;
      pr_top_processes : int list;
      pr_top_threads : string list;
      pr_suspects : (string * float) list;
      pr_output : string;
    }
  | P_triage of {
      pr_outliers : (string * float * bool) list;
      pr_output : string;
    }
  | P_query of {
      pq_kind : string;
      pq_size : int;
      pq_warm : bool;
      pq_output : string;
    }
  | P_vdiff of {
      pv_nruns : int;
      pv_columns : int;
      pv_regions : int;
      pv_warm : bool;
      pv_condition : string option;
      pv_output : string;
    }
  | P_status of {
      pr_requests : int;
      pr_runs : (string * int) list;
      pr_summaries : int;
      pr_hits : int;
      pr_misses : int;
      pr_store : (int * int) option;
      pr_output : string;
    }
  | P_subscribe of { pr_events : bool; pr_output : string }
  | P_shutdown of { pr_output : string }

let payload_output = function
  | P_record { pr_output; _ }
  | P_report { pr_output; _ }
  | P_triage { pr_output; _ }
  | P_status { pr_output; _ }
  | P_subscribe { pr_output; _ }
  | P_shutdown { pr_output } -> pr_output
  | P_query { pq_output; _ } -> pq_output
  | P_vdiff { pv_output; _ } -> pv_output

type error_body = { err_kind : string; err_message : string }

let error_body_of e =
  { err_kind = Session.error_kind e; err_message = Session.error_to_string e }

type response = {
  rsp_id : string option;
  rsp_body : (payload, error_body) result;
}

let error_response ~id e = { rsp_id = id; rsp_body = Error (error_body_of e) }

type event = { ev_name : string; ev_fields : (string * Json.t) list }

(* --- JSON field access (total) --------------------------------------- *)

let str = function Json.String s -> Some s | _ -> None

let int_ = function
  | Json.Int i -> Some i
  | Json.Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_ = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let bool_ = function Json.Bool b -> Some b | _ -> None

let str_list = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.String s :: tl -> go (s :: acc) tl
      | _ -> None
    in
    go [] l
  | _ -> None

let bad ctx name =
  Error (Session.Invalid (Printf.sprintf "%s: field %S has the wrong type" ctx name))

let field ctx obj name conv =
  match Json.member name obj with
  | None | Some Json.Null ->
    Error (Session.Invalid (Printf.sprintf "%s: missing field %S" ctx name))
  | Some v -> ( match conv v with Some x -> Ok x | None -> bad ctx name)

let field_opt ctx obj name conv ~default =
  match Json.member name obj with
  | None | Some Json.Null -> Ok default
  | Some v -> ( match conv v with Some x -> Ok x | None -> bad ctx name)

(* --- request decode --------------------------------------------------- *)

let workload_of_obj ctx obj =
  let* ws_workload = field ctx obj "workload" str in
  let* ws_np = field_opt ctx obj "np" int_ ~default:8 in
  let* ws_seed = field_opt ctx obj "seed" int_ ~default:1 in
  let* ws_fault = field_opt ctx obj "fault" str ~default:"none" in
  let* ws_all_images = field_opt ctx obj "all_images" bool_ ~default:false in
  Ok { ws_workload; ws_np; ws_seed; ws_fault; ws_all_images }

let source_of_json ctx name j =
  match j with
  (* shorthand: a bare string names a registered run *)
  | Json.String s -> Ok (Src_run s)
  | Json.Obj _ as obj -> (
    match
      ( Json.member "run" obj,
        Json.member "archive" obj,
        Json.member "workload" obj,
        Json.member "file" obj )
    with
    | Some (Json.String r), None, None, None -> Ok (Src_run r)
    | None, Some (Json.String dir), None, None ->
      let* salvage = field_opt ctx obj "salvage" bool_ ~default:false in
      Ok (Src_archive { dir; salvage })
    | None, None, Some _, None ->
      let* ws = workload_of_obj ctx obj in
      Ok (Src_workload ws)
    | None, None, None, Some (Json.String path) ->
      let* frontend = field ctx obj "frontend" str in
      Ok (Src_ingest { path; frontend })
    | _ ->
      Error
        (Session.Invalid
           (Printf.sprintf
              "%s: source %S needs exactly one of \"run\", \"archive\", \
               \"workload\" or \"file\""
              ctx name)))
  | _ ->
    Error
      (Session.Invalid
         (Printf.sprintf "%s: source %S must be a string or an object" ctx name))

let source_field ctx obj name =
  match Json.member name obj with
  | None | Some Json.Null ->
    Error (Session.Invalid (Printf.sprintf "%s: missing source %S" ctx name))
  | Some j -> source_of_json ctx name j

let config_params_of_json ctx obj =
  match Json.member "config" obj with
  | None | Some Json.Null -> Ok default_config
  | Some (Json.Obj _ as c) ->
    let d = default_config in
    let ctx = ctx ^ ".config" in
    let* pc_filter = field_opt ctx c "filter" str ~default:d.pc_filter in
    let* pc_custom = field_opt ctx c "custom" str_list ~default:d.pc_custom in
    let* pc_attrs = field_opt ctx c "attrs" str ~default:d.pc_attrs in
    let* pc_k = field_opt ctx c "k" int_ ~default:d.pc_k in
    let* pc_linkage = field_opt ctx c "linkage" str ~default:d.pc_linkage in
    let* pc_engine =
      field_opt ctx c "engine" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    let* pc_mode = field_opt ctx c "mode" str ~default:d.pc_mode in
    Ok { pc_filter; pc_custom; pc_attrs; pc_k; pc_linkage; pc_engine; pc_mode }
  | Some _ -> bad ctx "config"

let call_of_json ~meth obj =
  let ctx = meth in
  match meth with
  | "record" ->
    let* rq_workload = workload_of_obj ctx obj in
    let* rq_name =
      field_opt ctx obj "name" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    let* rq_out =
      field_opt ctx obj "out" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    let* rq_v1 = field_opt ctx obj "v1" bool_ ~default:false in
    Ok (Record { rq_workload; rq_name; rq_out; rq_v1 })
  | "compare" | "analyze" ->
    let* rq_normal = source_field ctx obj "normal" in
    let* rq_faulty = source_field ctx obj "faulty" in
    let* rq_config = config_params_of_json ctx obj in
    let* rq_diffnlr =
      field_opt ctx obj "diffnlr" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    if meth = "compare" then
      Ok (Compare { rq_normal; rq_faulty; rq_config; rq_diffnlr })
    else Ok (Analyze { rq_normal; rq_faulty; rq_config; rq_diffnlr })
  | "triage" ->
    let* rq_subject = source_field ctx obj "subject" in
    let* rq_config = config_params_of_json ctx obj in
    let* rq_limit = field_opt ctx obj "limit" int_ ~default:8 in
    Ok (Triage { rq_subject; rq_config; rq_limit })
  | "query" ->
    let* rq_q = field ctx obj "q" str in
    let* rq_source = source_field ctx obj "source" in
    let* rq_against =
      match Json.member "against" obj with
      | None | Some Json.Null -> Ok None
      | Some j ->
        let* s = source_of_json ctx "against" j in
        Ok (Some s)
    in
    let* rq_config = config_params_of_json ctx obj in
    Ok (Query { rq_q; rq_source; rq_against; rq_config })
  | "vdiff" ->
    let axes_of_json = function
      | Json.Obj fields ->
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | (k, Json.String v) :: tl -> go ((k, v) :: acc) tl
          | _ -> None
        in
        go [] fields
      | _ -> None
    in
    let* rq_runs =
      match Json.member "runs" obj with
      | None | Some Json.Null ->
        Error (Session.Invalid (ctx ^ ": missing field \"runs\""))
      | Some (Json.List l) ->
        let rec go acc i = function
          | [] -> Ok (List.rev acc)
          | j :: tl -> (
            let rctx = Printf.sprintf "%s.runs[%d]" ctx i in
            match j with
            | Json.Obj _ ->
              let* vs_name = field rctx j "name" str in
              let* vs_source = source_field rctx j "source" in
              let* vs_axes = field_opt rctx j "axes" axes_of_json ~default:[] in
              let* vs_bad = field_opt rctx j "bad" bool_ ~default:false in
              go ({ vs_name; vs_source; vs_axes; vs_bad } :: acc) (i + 1) tl
            | _ -> Error (Session.Invalid (rctx ^ ": must be an object")))
        in
        go [] 0 l
      | Some _ -> bad ctx "runs"
    in
    let* rq_trace =
      field_opt ctx obj "trace" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    let* rq_config = config_params_of_json ctx obj in
    Ok (Vdiff { rq_runs; rq_trace; rq_config })
  | "status" -> Ok Status
  | "subscribe" ->
    let* rq_events = field_opt ctx obj "events" bool_ ~default:true in
    Ok (Subscribe { rq_events })
  | "shutdown" -> Ok Shutdown
  | _ ->
    Error
      (Session.Protocol
         (Printf.sprintf
            "unknown method %S (methods: record, analyze, compare, triage, \
             query, vdiff, status, subscribe, shutdown)"
            meth))

(* Best-effort lexical extraction of the "id" field from a line that
   failed to parse, so even a malformed request is answered under its
   own id. *)
let scan_id line =
  let n = String.length line in
  let rec find i =
    if i + 4 > n then None
    else if String.sub line i 4 = {|"id"|} then Some (i + 4)
    else find (i + 1)
  in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  match find 0 with
  | None -> None
  | Some i -> (
    let i = skip_ws i in
    if i >= n || line.[i] <> ':' then None
    else
      let i = skip_ws (i + 1) in
      if i >= n || line.[i] <> '"' then None
      else
        let buf = Buffer.create 16 in
        let rec go i =
          if i >= n then None
          else
            match line.[i] with
            | '"' -> Some (Buffer.contents buf)
            | '\\' when i + 1 < n -> (
              let add c = Buffer.add_char buf c; go (i + 2) in
              match line.[i + 1] with
              | '"' -> add '"'
              | '\\' -> add '\\'
              | '/' -> add '/'
              | 'n' -> add '\n'
              | 't' -> add '\t'
              | 'r' -> add '\r'
              | 'b' -> add '\b'
              | 'f' -> add '\012'
              | _ -> None)
            | c -> Buffer.add_char buf c; go (i + 1)
        in
        go (i + 1))

let check_version ctx obj =
  match Json.member "difftrace-rpc" obj with
  | Some (Json.Int v) when v = version -> Ok ()
  | Some (Json.Int v) ->
    Error
      (Session.Protocol
         (Printf.sprintf "%s: unsupported protocol version %d (this daemon \
                          speaks %s)" ctx v version_string))
  | _ ->
    Error
      (Session.Protocol
         (Printf.sprintf "%s: missing \"difftrace-rpc\" version field" ctx))

let decode_request line =
  if String.length line > max_line_bytes then
    Error
      ( scan_id (String.sub line 0 (min (String.length line) 4096)),
        Session.Protocol
          (Printf.sprintf "request line exceeds %d bytes (%d)" max_line_bytes
             (String.length line)) )
  else
    match Json.of_string line with
    | exception Json.Parse_error m ->
      Error (scan_id line, Session.Protocol ("malformed JSON: " ^ m))
    | Json.Obj _ as obj -> (
      let id =
        match Json.member "id" obj with Some (Json.String s) -> Some s | _ -> None
      in
      let fail e = Error (id, e) in
      match check_version "request" obj with
      | Error e -> fail e
      | Ok () -> (
        match id with
        | None ->
          fail (Session.Protocol "request: missing string \"id\" field")
        | Some req_id -> (
          match Json.member "method" obj with
          | Some (Json.String meth) -> (
            let params =
              match Json.member "params" obj with
              | Some (Json.Obj _ as p) -> Ok p
              | None | Some Json.Null -> Ok (Json.Obj [])
              | Some _ ->
                Error (Session.Invalid "request: \"params\" must be an object")
            in
            match params with
            | Error e -> fail e
            | Ok params -> (
              match call_of_json ~meth params with
              | Ok req_call -> Ok { req_id; req_call }
              | Error e -> fail e))
          | _ ->
            fail (Session.Protocol "request: missing string \"method\" field"))))
    | _ ->
      Error (None, Session.Protocol "malformed JSON: expected an object")

(* --- encode ----------------------------------------------------------- *)

let json_opt f = function None -> Json.Null | Some v -> f v

let workload_fields ws =
  [ ("workload", Json.String ws.ws_workload);
    ("np", Json.Int ws.ws_np);
    ("seed", Json.Int ws.ws_seed);
    ("fault", Json.String ws.ws_fault);
    ("all_images", Json.Bool ws.ws_all_images) ]

let source_to_json = function
  | Src_run r -> Json.Obj [ ("run", Json.String r) ]
  | Src_ingest { path; frontend } ->
    Json.Obj [ ("file", Json.String path); ("frontend", Json.String frontend) ]
  | Src_archive { dir; salvage } ->
    Json.Obj [ ("archive", Json.String dir); ("salvage", Json.Bool salvage) ]
  | Src_workload ws -> Json.Obj (workload_fields ws)

let config_to_json p =
  Json.Obj
    [ ("filter", Json.String p.pc_filter);
      ("custom", Json.List (List.map (fun s -> Json.String s) p.pc_custom));
      ("attrs", Json.String p.pc_attrs);
      ("k", Json.Int p.pc_k);
      ("linkage", Json.String p.pc_linkage);
      ("engine", json_opt (fun s -> Json.String s) p.pc_engine);
      ("mode", Json.String p.pc_mode) ]

let params_of_call = function
  | Record { rq_workload; rq_name; rq_out; rq_v1 } ->
    Json.Obj
      (workload_fields rq_workload
      @ [ ("name", json_opt (fun s -> Json.String s) rq_name);
          ("out", json_opt (fun s -> Json.String s) rq_out);
          ("v1", Json.Bool rq_v1) ])
  | Compare { rq_normal; rq_faulty; rq_config; rq_diffnlr }
  | Analyze { rq_normal; rq_faulty; rq_config; rq_diffnlr } ->
    Json.Obj
      [ ("normal", source_to_json rq_normal);
        ("faulty", source_to_json rq_faulty);
        ("config", config_to_json rq_config);
        ("diffnlr", json_opt (fun s -> Json.String s) rq_diffnlr) ]
  | Triage { rq_subject; rq_config; rq_limit } ->
    Json.Obj
      [ ("subject", source_to_json rq_subject);
        ("config", config_to_json rq_config);
        ("limit", Json.Int rq_limit) ]
  | Query { rq_q; rq_source; rq_against; rq_config } ->
    Json.Obj
      [ ("q", Json.String rq_q);
        ("source", source_to_json rq_source);
        ("against", json_opt source_to_json rq_against);
        ("config", config_to_json rq_config) ]
  | Vdiff { rq_runs; rq_trace; rq_config } ->
    Json.Obj
      [ ( "runs",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [ ("name", Json.String r.vs_name);
                     ("source", source_to_json r.vs_source);
                     ( "axes",
                       Json.Obj
                         (List.map (fun (k, v) -> (k, Json.String v)) r.vs_axes)
                     );
                     ("bad", Json.Bool r.vs_bad) ])
               rq_runs) );
        ("trace", json_opt (fun s -> Json.String s) rq_trace);
        ("config", config_to_json rq_config) ]
  | Status | Shutdown -> Json.Obj []
  | Subscribe { rq_events } -> Json.Obj [ ("events", Json.Bool rq_events) ]

let encode_request r =
  Json.to_string
    (Json.Obj
       [ ("difftrace-rpc", Json.Int version);
         ("id", Json.String r.req_id);
         ("method", Json.String (method_name r.req_call));
         ("params", params_of_call r.req_call) ])

let payload_to_json = function
  | P_record { pr_files; pr_traces; pr_events; pr_hung; pr_run; pr_output } ->
    Json.Obj
      [ ("method", Json.String "record");
        ("files", Json.Int pr_files);
        ("traces", Json.Int pr_traces);
        ("events", Json.Int pr_events);
        ("hung", Json.Int pr_hung);
        ("run", json_opt (fun s -> Json.String s) pr_run);
        ("output", Json.String pr_output) ]
  | P_report
      { pr_style; pr_bscore; pr_top_processes; pr_top_threads; pr_suspects;
        pr_output } ->
    Json.Obj
      [ ( "method",
          Json.String
            (match pr_style with `Compare -> "compare" | `Analyze -> "analyze")
        );
        ("bscore", Json.Float pr_bscore);
        ( "top_processes",
          Json.List (List.map (fun p -> Json.Int p) pr_top_processes) );
        ( "top_threads",
          Json.List (List.map (fun t -> Json.String t) pr_top_threads) );
        ( "suspects",
          Json.List
            (List.map
               (fun (l, s) ->
                 Json.Obj
                   [ ("trace", Json.String l); ("score", Json.Float s) ])
               pr_suspects) );
        ("output", Json.String pr_output) ]
  | P_triage { pr_outliers; pr_output } ->
    Json.Obj
      [ ("method", Json.String "triage");
        ( "outliers",
          Json.List
            (List.map
               (fun (l, s, tr) ->
                 Json.Obj
                   [ ("trace", Json.String l);
                     ("score", Json.Float s);
                     ("truncated", Json.Bool tr) ])
               pr_outliers) );
        ("output", Json.String pr_output) ]
  | P_query { pq_kind; pq_size; pq_warm; pq_output } ->
    Json.Obj
      [ ("method", Json.String "query");
        ("kind", Json.String pq_kind);
        ("size", Json.Int pq_size);
        ("warm", Json.Bool pq_warm);
        ("output", Json.String pq_output) ]
  | P_vdiff { pv_nruns; pv_columns; pv_regions; pv_warm; pv_condition;
              pv_output } ->
    Json.Obj
      [ ("method", Json.String "vdiff");
        ("nruns", Json.Int pv_nruns);
        ("columns", Json.Int pv_columns);
        ("regions", Json.Int pv_regions);
        ("warm", Json.Bool pv_warm);
        ("condition", json_opt (fun s -> Json.String s) pv_condition);
        ("output", Json.String pv_output) ]
  | P_status
      { pr_requests; pr_runs; pr_summaries; pr_hits; pr_misses; pr_store;
        pr_output } ->
    Json.Obj
      [ ("method", Json.String "status");
        ("requests", Json.Int pr_requests);
        ( "runs",
          Json.List
            (List.map
               (fun (n, c) ->
                 Json.Obj [ ("name", Json.String n); ("traces", Json.Int c) ])
               pr_runs) );
        ("summaries", Json.Int pr_summaries);
        ("hits", Json.Int pr_hits);
        ("misses", Json.Int pr_misses);
        ( "store",
          json_opt
            (fun (s, m) ->
              Json.Obj [ ("summaries", Json.Int s); ("matrices", Json.Int m) ])
            pr_store );
        ("output", Json.String pr_output) ]
  | P_subscribe { pr_events; pr_output } ->
    Json.Obj
      [ ("method", Json.String "subscribe");
        ("events", Json.Bool pr_events);
        ("output", Json.String pr_output) ]
  | P_shutdown { pr_output } ->
    Json.Obj
      [ ("method", Json.String "shutdown"); ("output", Json.String pr_output) ]

let encode_response r =
  let id = json_opt (fun s -> Json.String s) r.rsp_id in
  let body =
    match r.rsp_body with
    | Ok p -> ("ok", payload_to_json p)
    | Error e ->
      ( "error",
        Json.Obj
          [ ("kind", Json.String e.err_kind);
            ("message", Json.String e.err_message) ] )
  in
  Json.to_string
    (Json.Obj [ ("difftrace-rpc", Json.Int version); ("id", id); body ])

let encode_event ev =
  Json.to_string
    (Json.Obj
       (("difftrace-rpc", Json.Int version)
       :: ("event", Json.String ev.ev_name)
       :: ev.ev_fields))

(* --- response / message decode (client side) -------------------------- *)

let ofail fmt = Printf.ksprintf (fun m -> Error m) fmt

let req ctx obj name conv =
  match Json.member name obj with
  | None | Some Json.Null -> ofail "%s: missing field %S" ctx name
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> ofail "%s: field %S has the wrong type" ctx name)

let opt ctx obj name conv ~default =
  match Json.member name obj with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> ofail "%s: field %S has the wrong type" ctx name)

let list_of conv = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | hd :: tl -> ( match conv hd with Some x -> go (x :: acc) tl | None -> None)
    in
    go [] l
  | _ -> None

let payload_of_json obj =
  let* meth = req "ok" obj "method" str in
  let ctx = "ok." ^ meth in
  let* output = req ctx obj "output" str in
  match meth with
  | "record" ->
    let* pr_files = req ctx obj "files" int_ in
    let* pr_traces = req ctx obj "traces" int_ in
    let* pr_events = req ctx obj "events" int_ in
    let* pr_hung = req ctx obj "hung" int_ in
    let* pr_run =
      opt ctx obj "run" (fun j -> Option.map Option.some (str j)) ~default:None
    in
    Ok (P_record { pr_files; pr_traces; pr_events; pr_hung; pr_run;
                   pr_output = output })
  | "compare" | "analyze" ->
    let suspect j =
      match (Json.member "trace" j, Json.member "score" j) with
      | Some (Json.String l), Some s -> Option.map (fun f -> (l, f)) (float_ s)
      | _ -> None
    in
    let* pr_bscore = req ctx obj "bscore" float_ in
    let* pr_top_processes = req ctx obj "top_processes" (list_of int_) in
    let* pr_top_threads = req ctx obj "top_threads" (list_of str) in
    let* pr_suspects = req ctx obj "suspects" (list_of suspect) in
    Ok
      (P_report
         { pr_style = (if meth = "compare" then `Compare else `Analyze);
           pr_bscore; pr_top_processes; pr_top_threads; pr_suspects;
           pr_output = output })
  | "triage" ->
    let outlier j =
      match
        (Json.member "trace" j, Json.member "score" j, Json.member "truncated" j)
      with
      | Some (Json.String l), Some s, Some (Json.Bool tr) ->
        Option.map (fun f -> (l, f, tr)) (float_ s)
      | _ -> None
    in
    let* pr_outliers = req ctx obj "outliers" (list_of outlier) in
    Ok (P_triage { pr_outliers; pr_output = output })
  | "query" ->
    let* pq_kind = req ctx obj "kind" str in
    let* pq_size = req ctx obj "size" int_ in
    let* pq_warm = req ctx obj "warm" bool_ in
    Ok (P_query { pq_kind; pq_size; pq_warm; pq_output = output })
  | "vdiff" ->
    let* pv_nruns = req ctx obj "nruns" int_ in
    let* pv_columns = req ctx obj "columns" int_ in
    let* pv_regions = req ctx obj "regions" int_ in
    let* pv_warm = req ctx obj "warm" bool_ in
    let* pv_condition =
      opt ctx obj "condition" (fun j -> Option.map Option.some (str j))
        ~default:None
    in
    Ok (P_vdiff { pv_nruns; pv_columns; pv_regions; pv_warm; pv_condition;
                  pv_output = output })
  | "status" ->
    let run j =
      match (Json.member "name" j, Json.member "traces" j) with
      | Some (Json.String n), Some c -> Option.map (fun i -> (n, i)) (int_ c)
      | _ -> None
    in
    let store j =
      match (Json.member "summaries" j, Json.member "matrices" j) with
      | Some s, Some m -> (
        match (int_ s, int_ m) with
        | Some s, Some m -> Some (s, m)
        | _ -> None)
      | _ -> None
    in
    let* pr_requests = req ctx obj "requests" int_ in
    let* pr_runs = req ctx obj "runs" (list_of run) in
    let* pr_summaries = req ctx obj "summaries" int_ in
    let* pr_hits = req ctx obj "hits" int_ in
    let* pr_misses = req ctx obj "misses" int_ in
    let* pr_store =
      opt ctx obj "store" (fun j -> Option.map Option.some (store j))
        ~default:None
    in
    Ok (P_status { pr_requests; pr_runs; pr_summaries; pr_hits; pr_misses;
                   pr_store; pr_output = output })
  | "subscribe" ->
    let* pr_events = req ctx obj "events" bool_ in
    Ok (P_subscribe { pr_events; pr_output = output })
  | "shutdown" -> Ok (P_shutdown { pr_output = output })
  | _ -> ofail "ok: unknown method %S in response" meth

type message = Response of response | Event of event

let decode_message line =
  match Json.of_string line with
  | exception Json.Parse_error m -> ofail "malformed JSON: %s" m
  | Json.Obj fields as obj -> (
    match check_version "message" obj with
    | Error e -> Error (Session.error_to_string e)
    | Ok () -> (
      match Json.member "event" obj with
      | Some (Json.String ev_name) ->
        let ev_fields =
          List.filter
            (fun (k, _) -> k <> "difftrace-rpc" && k <> "event")
            fields
        in
        Ok (Event { ev_name; ev_fields })
      | _ -> (
        let rsp_id =
          match Json.member "id" obj with
          | Some (Json.String s) -> Some s
          | _ -> None
        in
        match (Json.member "ok" obj, Json.member "error" obj) with
        | Some (Json.Obj _ as ok), None ->
          let* p = payload_of_json ok in
          Ok (Response { rsp_id; rsp_body = Ok p })
        | None, Some (Json.Obj _ as err) ->
          let* err_kind = req "error" err "kind" str in
          let* err_message = req "error" err "message" str in
          Ok (Response { rsp_id; rsp_body = Error { err_kind; err_message } })
        | _ -> Error "message: expected exactly one of \"ok\" or \"error\"")))
  | _ -> Error "malformed JSON: expected an object"

let decode_response line =
  match decode_message line with
  | Ok (Response r) -> Ok r
  | Ok (Event _) -> Error "expected a response, got an event"
  | Error m -> Error m
