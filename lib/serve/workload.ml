module Session = Difftrace_core.Session
module W = Difftrace_workloads

let known = [ "heat"; "heat2d"; "ilcs"; "lulesh"; "oddeven" ]

let run name ~np ~seed ~level ~fault =
  let exec () =
    match name with
    | "oddeven" -> Some (fst (W.Odd_even.run ~np ~seed ~level ~fault ()))
    | "ilcs" -> Some (fst (W.Ilcs.run ~np ~seed ~level ~fault ()))
    | "lulesh" -> Some (W.Lulesh.run ~np ~seed ~level ~fault ())
    | "heat" -> Some (fst (W.Heat.run ~np ~seed ~level ~fault ()))
    | "heat2d" ->
      (* np selects the grid: np ranks arranged np/2 x 2 when even *)
      let px = max 1 (np / 2) and py = if np >= 2 then 2 else 1 in
      Some (fst (W.Heat2d.run ~px ~py ~seed ~level ~fault ()))
    | _ -> None
  in
  match exec () with
  | Some outcome -> Ok outcome
  | None -> Error (Session.Unknown_workload { name; known })
  | exception exn -> Error (Session.Run_failed (Printexc.to_string exn))
