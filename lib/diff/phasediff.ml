let default_markers name =
  List.mem name
    [ "MPI_Barrier"; "MPI_Allreduce"; "MPI_Reduce"; "MPI_Bcast";
      "MPI_Allgather"; "MPI_Gather"; "MPI_Scatter"; "MPI_Alltoall";
      "MPI_Scan"; "MPI_Comm_split" ]

let split ~markers calls =
  let phases = ref [] and current = ref [] in
  List.iter
    (fun c ->
      current := c :: !current;
      if markers c then begin
        phases := List.rev !current :: !phases;
        current := []
      end)
    calls;
  if !current <> [] then phases := List.rev !current :: !phases;
  List.rev !phases

type phase_report = {
  index : int;
  normal_phase : string list;
  faulty_phase : string list;
  distance : int;
}

type t = {
  phases : phase_report list;
  first_divergent : int option;
  total_phases : int;
}

let compare ?(markers = default_markers) ~normal ~faulty () =
  let pn = split ~markers normal and pf = split ~markers faulty in
  let total = max (List.length pn) (List.length pf) in
  let nth l i = Option.value ~default:[] (List.nth_opt l i) in
  let phases =
    List.init total (fun i ->
        let a = nth pn i and b = nth pf i in
        { index = i;
          normal_phase = a;
          faulty_phase = b;
          distance =
            Myers.edit_distance ~equal:String.equal (Array.of_list a)
              (Array.of_list b) })
  in
  { phases;
    first_divergent =
      List.find_opt (fun p -> p.distance > 0) phases |> Option.map (fun p -> p.index);
    total_phases = total }

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Difftrace_util.Texttable.render
       ~headers:[ "Phase"; "Normal calls"; "Faulty calls"; "Edit distance" ]
       (List.map
          (fun p ->
            [ string_of_int p.index;
              string_of_int (List.length p.normal_phase);
              string_of_int (List.length p.faulty_phase);
              string_of_int p.distance ])
          t.phases));
  (match t.first_divergent with
  | None -> Buffer.add_string buf "phases are identical\n"
  | Some i ->
    Buffer.add_string buf (Printf.sprintf "first divergent phase: %d\n" i);
    (* look the phase up by its [index] field rather than positionally:
       a [t] assembled from ragged runs (or by hand) may hold fewer
       phase reports than [first_divergent] implies, and a raw
       [List.nth] here died with [Failure "nth"] *)
    (match List.find_opt (fun p -> p.index = i) t.phases with
    | None ->
      Buffer.add_string buf
        (Printf.sprintf "(no report recorded for phase %d)\n" i)
    | Some p ->
      Buffer.add_string buf
        (Diffnlr.render
           ~title:(Printf.sprintf "phase %d" i)
           (Diffnlr.of_strings ~normal:p.normal_phase ~faulty:p.faulty_phase))));
  Buffer.contents buf
