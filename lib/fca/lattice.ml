open Difftrace_util
module Telemetry = Difftrace_obs.Telemetry

(* concepts materialized by either construction; Godin additionally
   counts per-object incremental updates *)
let c_concepts = Telemetry.Counter.make "lattice.concepts"
let c_inserts = Telemetry.Counter.make "lattice.godin.inserts"

type concept = { extent : Bitset.t; intent : Bitset.t }

type t = { concepts : concept array }

let canonical arr =
  let cmp a b =
    match Int.compare (Bitset.cardinal b.extent) (Bitset.cardinal a.extent) with
    | 0 -> Bitset.compare a.extent b.extent
    | c -> c
  in
  let arr = Array.copy arr in
  Array.sort cmp arr;
  arr

let concepts t = t.concepts
let size t = Array.length t.concepts

(* --- Ganter's NextClosure ------------------------------------------ *)

let of_context_batch ctx =
  let m = Context.n_attrs ctx in
  let intents = ref [] in
  let a = ref (Context.closure ctx (Bitset.create m)) in
  let continue_enum = ref true in
  intents := [ !a ];
  if Bitset.cardinal !a = m then continue_enum := false;
  while !continue_enum do
    (* next_closure: scan attributes from largest to smallest *)
    let next = ref None in
    let i = ref (m - 1) in
    while !next = None && !i >= 0 do
      let cur = !a in
      if Bitset.mem cur !i then a := Bitset.diff cur (Bitset.singleton m !i)
      else begin
        let cand = Bitset.copy !a in
        Bitset.add cand !i;
        let b = Context.closure ctx cand in
        (* lectic validity: B \ A has no attribute smaller than i *)
        let fresh = Bitset.diff b !a in
        let ok = ref true in
        Bitset.iter (fun j -> if j < !i then ok := false) fresh;
        if !ok then next := Some b
      end;
      decr i
    done;
    match !next with
    | None -> continue_enum := false
    | Some b ->
      intents := b :: !intents;
      a := b;
      if Bitset.cardinal b = m then continue_enum := false
  done;
  (* A context can yield the full intent both as closure(∅) and at the
     end; dedupe defensively. *)
  let seen = Hashtbl.create 64 in
  let uniq =
    List.filter
      (fun intent ->
        let key = Bitset.to_list intent in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      !intents
  in
  let concepts =
    List.map
      (fun intent -> { extent = Context.common_objects ctx intent; intent })
      uniq
  in
  Telemetry.Counter.add c_concepts (List.length concepts);
  { concepts = canonical (Array.of_list concepts) }

(* --- Godin's incremental algorithm --------------------------------- *)

let of_context_incremental ctx =
  let m = Context.n_attrs ctx in
  let n = Context.n_objects ctx in
  (* live concept store; intents are unique *)
  let store : concept Vec.t = Vec.create () in
  let intent_index : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let add_concept c =
    let key = Bitset.to_list c.intent in
    if not (Hashtbl.mem intent_index key) then begin
      Hashtbl.add intent_index key (Vec.length store);
      Vec.push store c
    end
  in
  (* virtual bottom: empty extent, full intent *)
  add_concept { extent = Bitset.create n; intent = Bitset.full m };
  for g = 0 to n - 1 do
    Telemetry.Counter.incr c_inserts;
    let ag = Context.object_attrs ctx g in
    (* candidate new intents: intent(C) ∩ A(g) for every concept C,
       with extent = union of extents of concepts whose intent ⊇ J
       (computed before g is added anywhere), plus g itself *)
    let candidates : (int list, Bitset.t * Bitset.t) Hashtbl.t =
      Hashtbl.create 32
    in
    Vec.iter
      (fun c ->
        let j = Bitset.inter c.intent ag in
        let key = Bitset.to_list j in
        if not (Hashtbl.mem intent_index key) then
          match Hashtbl.find_opt candidates key with
          | Some _ -> ()
          | None ->
            (* extent(J) = ∪ extents of concepts whose intent ⊇ J *)
            let ext = Bitset.create n in
            Vec.iter
              (fun c' ->
                if Bitset.subset j c'.intent then Bitset.add_all ext c'.extent)
              store;
            Hashtbl.add candidates key (ext, j))
      store;
    (* update existing concepts whose intent is carried by g *)
    Vec.iteri
      (fun idx c ->
        if Bitset.subset c.intent ag then
          Vec.set store idx { c with extent = (let e = Bitset.copy c.extent in
                                               Bitset.add e g;
                                               e) })
      store;
    (* add the new concepts *)
    Hashtbl.iter
      (fun _ (ext, j) ->
        let e = Bitset.copy ext in
        Bitset.add e g;
        add_concept { extent = e; intent = j })
      candidates
  done;
  (* Drop the virtual bottom if it is not a real concept: the bottom
     concept's intent must equal closure of its extent. For extent ∅
     the real intent is the full attribute set only if no object
     carries it; when some object has all attributes the (∅, M)
     seed has been absorbed (extent grew). Remove any concept whose
     intent ≠ closure(extent) — only the seed can violate this. *)
  let real =
    Vec.to_array store
    |> Array.to_list
    |> List.filter (fun c ->
           Bitset.equal (Context.common_attrs ctx c.extent) c.intent)
  in
  Telemetry.Counter.add c_concepts (List.length real);
  { concepts = canonical (Array.of_list real) }

(* --- queries -------------------------------------------------------- *)

let equal a b =
  size a = size b
  && Array.for_all2
       (fun c1 c2 -> Bitset.equal c1.extent c2.extent && Bitset.equal c1.intent c2.intent)
       a.concepts b.concepts

let top t =
  if size t = 0 then invalid_arg "Lattice.top: empty lattice";
  t.concepts.(0)

let bottom t =
  if size t = 0 then invalid_arg "Lattice.bottom: empty lattice";
  t.concepts.(size t - 1)

let object_concept t i =
  (* most specific concept containing object i: minimal extent *)
  let best = ref None in
  Array.iter
    (fun c ->
      if Bitset.mem c.extent i then
        match !best with
        | None -> best := Some c
        | Some b ->
          if Bitset.cardinal c.extent < Bitset.cardinal b.extent then best := Some c)
    t.concepts;
  match !best with
  | Some c -> c
  | None -> invalid_arg "Lattice.object_concept: object in no concept"

let covers t =
  let n = size t in
  let lt i j =
    (* concept i strictly below j in the order: extent(i) ⊂ extent(j) *)
    Bitset.subset t.concepts.(i).extent t.concepts.(j).extent
    && not (Bitset.equal t.concepts.(i).extent t.concepts.(j).extent)
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if lt i j then begin
        let between = ref false in
        for k = 0 to n - 1 do
          if k <> i && k <> j && lt i k && lt k j then between := true
        done;
        if not !between then edges := (i, j) :: !edges
      end
    done
  done;
  List.rev !edges

let to_string ctx t =
  let buf = Buffer.create 1024 in
  let attr_owner = Hashtbl.create 64 in
  (* reduced labeling: each attribute belongs to the concept with the
     largest extent whose intent contains it *)
  for a = 0 to Context.n_attrs ctx - 1 do
    let best = ref (-1) in
    Array.iteri
      (fun i c ->
        if Bitset.mem c.intent a && !best = -1 then best := i)
      t.concepts;
    if !best >= 0 then
      Hashtbl.add attr_owner !best (Context.attr_name ctx a)
  done;
  Array.iteri
    (fun i c ->
      let objs =
        Bitset.fold (fun o acc -> Context.object_label ctx o :: acc) c.extent []
        |> List.rev
      in
      let own_attrs = List.rev (Hashtbl.find_all attr_owner i) in
      Buffer.add_string buf
        (Printf.sprintf "#%d extent={%s}%s\n" i (String.concat ", " objs)
           (if own_attrs = [] then ""
            else " introduces {" ^ String.concat ", " own_attrs ^ "}")))
    t.concepts;
  List.iter
    (fun (child, parent) ->
      Buffer.add_string buf (Printf.sprintf "  #%d -> #%d\n" child parent))
    (covers t);
  Buffer.contents buf

let dot_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(title = "concept lattice") ctx t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lattice {\n";
  Buffer.add_string buf (Printf.sprintf "  label=\"%s\";\n" (dot_escape title));
  Buffer.add_string buf "  rankdir=BT;\n  node [shape=record];\n";
  (* reduced labeling: attribute at its most general concept *)
  let attr_owner = Hashtbl.create 64 in
  for a = 0 to Context.n_attrs ctx - 1 do
    let best = ref (-1) in
    Array.iteri
      (fun i c -> if Bitset.mem c.intent a && !best = -1 then best := i)
      t.concepts;
    if !best >= 0 then Hashtbl.add attr_owner !best (Context.attr_name ctx a)
  done;
  Array.iteri
    (fun i c ->
      let objs =
        Bitset.fold (fun o acc -> Context.object_label ctx o :: acc) c.extent []
        |> List.rev |> String.concat ", "
      in
      let attrs = String.concat ", " (List.rev (Hashtbl.find_all attr_owner i)) in
      Buffer.add_string buf
        (Printf.sprintf "  c%d [label=\"{%s|%s}\"];\n" i (dot_escape attrs)
           (dot_escape objs)))
    t.concepts;
  List.iter
    (fun (child, parent) ->
      Buffer.add_string buf (Printf.sprintf "  c%d -> c%d;\n" child parent))
    (covers t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let jaccard t i j =
  let ci = object_concept t i and cj = object_concept t j in
  Bitset.jaccard ci.intent cj.intent
