open Difftrace_util

type t = {
  objects : string array;
  attrs : string array;
  incidence : Bitset.t array; (* per object: attribute set *)
}

let of_attr_sets rows =
  let attr_ids = Hashtbl.create 256 in
  let attr_names = Vec.create () in
  let intern a =
    match Hashtbl.find_opt attr_ids a with
    | Some i -> i
    | None ->
      let i = Vec.length attr_names in
      Hashtbl.add attr_ids a i;
      Vec.push attr_names a;
      i
  in
  let prelim = List.map (fun (label, attrs) -> (label, List.map intern attrs)) rows in
  let n_attrs = Vec.length attr_names in
  let objects = Array.of_list (List.map fst prelim) in
  let incidence =
    Array.of_list (List.map (fun (_, ids) -> Bitset.of_list n_attrs ids) prelim)
  in
  { objects; attrs = Vec.to_array attr_names; incidence }

let n_objects t = Array.length t.objects
let n_attrs t = Array.length t.attrs

let object_label t i = t.objects.(i)
let attr_name t j = t.attrs.(j)
let has t i j = Bitset.mem t.incidence.(i) j
let object_attrs t i = t.incidence.(i)

let common_attrs t objs =
  let acc = Bitset.full (n_attrs t) in
  Bitset.iter (fun i -> Bitset.inter_into acc t.incidence.(i)) objs;
  acc

let common_objects t attrs =
  let acc = Bitset.create (n_objects t) in
  for i = 0 to n_objects t - 1 do
    if Bitset.subset attrs t.incidence.(i) then Bitset.add acc i
  done;
  acc

let c_closures = Difftrace_obs.Telemetry.Counter.make "fca.closures"

let closure t attrs =
  Difftrace_obs.Telemetry.Counter.incr c_closures;
  common_attrs t (common_objects t attrs)

let jaccard t i j = Bitset.jaccard t.incidence.(i) t.incidence.(j)

let to_table t =
  let headers = "" :: Array.to_list t.attrs in
  let rows =
    List.init (n_objects t) (fun i ->
        t.objects.(i)
        :: List.init (n_attrs t) (fun j -> if has t i j then "x" else ""))
  in
  Texttable.render ~headers rows
