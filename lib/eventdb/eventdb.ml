module Event = Difftrace_trace.Event
module Symtab = Difftrace_trace.Symtab
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module Nlr = Difftrace_nlr.Nlr
module Varint = Difftrace_util.Varint
module Telemetry = Difftrace_obs.Telemetry

let c_builds = Telemetry.Counter.make "eventdb.builds"
let c_loads = Telemetry.Counter.make "eventdb.loads"
let c_saved = Telemetry.Counter.make "eventdb.saved"

type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

let sequential = { run = (fun n f -> Array.init n f) }

type loop_span = { lp_body : int; lp_count : int; lp_start : int; lp_stop : int }

type thread = {
  th_pid : int;
  th_tid : int;
  th_truncated : bool;
  th_events : Event.t array;
  th_postings : int array array;
  th_intervals : Intervals.t array;
  th_loops : loop_span array;
}

type t = {
  db_digest : string;
  db_symtab : Symtab.t;
  db_table : Nlr.Loop_table.t;
  db_threads : thread array;
}

let label th =
  if th.th_tid = 0 then string_of_int th.th_pid
  else Printf.sprintf "%d.%d" th.th_pid th.th_tid

let long_label th = Printf.sprintf "%d.%d" th.th_pid th.th_tid

let find_thread db l =
  Array.find_opt (fun th -> label th = l || long_label th = l) db.db_threads

(* {2 Content digest} *)

let digest ts =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00')
    (Symtab.names (Trace_set.symtab ts));
  Array.iter
    (fun tr ->
      Varint.write buf tr.Trace.pid;
      Varint.write buf tr.Trace.tid;
      Buffer.add_char buf (if tr.Trace.truncated then '\x01' else '\x00');
      Varint.write buf (Array.length tr.Trace.events);
      Array.iter (fun e -> Varint.write buf (Event.encode e)) tr.Trace.events)
    (Trace_set.traces ts);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* {2 Loop spans}

   Loops are recognized over the call-ID sequence, so spans live in
   call-ordinal space first and are mapped to event positions through
   the positions of the thread's [Call] events: a span runs from the
   position of its first call to the position of the first call after
   it (or the end of the stream). *)

let body_expanded table memo id =
  let rec body id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let v = Array.fold_left (fun acc e -> acc + elem e) 0 (Nlr.Loop_table.body table id) in
      Hashtbl.add memo id v;
      v
  and elem = function
    | Nlr.Sym _ -> 1
    | Nlr.Loop { body = b; count } -> count * body b
  in
  body id

let loop_spans ~table ~call_pos ~n_events (nlr : Nlr.t) =
  let memo = Hashtbl.create 16 in
  let ncalls = Array.length call_pos in
  let pos c = if c < ncalls then call_pos.(c) else n_events in
  let spans = ref [] in
  (* every loop instance at every nesting level gets a span, so [under
     Lk] is a plain span-membership test; the instance count is bounded
     by the call count, keeping this linear *)
  let rec walk elems cursor =
    Array.fold_left
      (fun c e ->
        match e with
        | Nlr.Sym _ -> c + 1
        | Nlr.Loop { body; count } ->
          let blen = body_expanded table memo body in
          let len = count * blen in
          spans :=
            { lp_body = body; lp_count = count; lp_start = pos c;
              lp_stop = pos (c + len) }
            :: !spans;
          for i = 0 to count - 1 do
            ignore (walk (Nlr.Loop_table.body table body) (c + (i * blen)))
          done;
          c + len)
      cursor elems
  in
  ignore (walk nlr.Nlr.elems 0);
  Array.of_list (List.rev !spans)

let body_contains table ~outer ~inner =
  let rec go outer =
    outer = inner
    || Array.exists
         (function
           | Nlr.Loop { body; _ } -> go body
           | Nlr.Sym _ -> false)
         (Nlr.Loop_table.body table outer)
  in
  go outer

(* {2 Build}

   Per-thread indexing is independent work fanned over the runner; each
   thread summarizes into a private loop table, and the private tables
   are re-interned into the shared one sequentially in thread order —
   the same determinism recipe the pipeline uses, so sequential and
   parallel builds are structurally identical. *)

type built = {
  b_postings : int array array;
  b_intervals : Intervals.t array;
  b_table : Nlr.Loop_table.t;
  b_spans : loop_span array;
}

let index_events ~n_funcs events =
  let postings = Array.make n_funcs [] in
  let calls = ref [] in
  let ncalls = ref 0 in
  Array.iteri
    (fun pos e ->
      match e with
      | Event.Call id ->
        postings.(id) <- pos :: postings.(id);
        calls := pos :: !calls;
        incr ncalls
      | Event.Return _ -> ())
    events;
  let call_pos = Array.make !ncalls 0 in
  List.iteri (fun i p -> call_pos.(!ncalls - 1 - i) <- p) !calls;
  let postings =
    Array.map (fun ps -> Array.of_list (List.rev ps)) postings
  in
  (postings, call_pos)

(* re-intern a private table into the shared one, returning the body-ID
   map; body references inside a body always point backwards (bodies
   are created innermost-first), so a single forward pass suffices *)
let remap_table ~from ~into =
  let n = Nlr.Loop_table.size from in
  let map = Array.make n (-1) in
  for id = 0 to n - 1 do
    let rewritten =
      Array.map
        (function
          | Nlr.Sym s -> Nlr.Sym s
          | Nlr.Loop { body; count } -> Nlr.Loop { body = map.(body); count })
        (Nlr.Loop_table.body from id)
    in
    map.(id) <- Nlr.Loop_table.intern into rewritten
  done;
  map

let build ?(runner = sequential) ts =
  Telemetry.Counter.incr c_builds;
  let symtab = Trace_set.symtab ts in
  let n_funcs = Symtab.size symtab in
  let traces = Trace_set.traces ts in
  let built =
    runner.run (Array.length traces) (fun i ->
        let tr = traces.(i) in
        let postings, call_pos = index_events ~n_funcs tr.Trace.events in
        let table = Nlr.Loop_table.create () in
        let nlr = Nlr.of_ids ~table (Trace.call_ids tr) in
        let spans =
          loop_spans ~table ~call_pos
            ~n_events:(Array.length tr.Trace.events)
            nlr
        in
        { b_postings = postings;
          b_intervals = Intervals.of_events tr.Trace.events;
          b_table = table;
          b_spans = spans })
  in
  let shared = Nlr.Loop_table.create () in
  let threads =
    Array.mapi
      (fun i b ->
        let tr = traces.(i) in
        let map = remap_table ~from:b.b_table ~into:shared in
        { th_pid = tr.Trace.pid;
          th_tid = tr.Trace.tid;
          th_truncated = tr.Trace.truncated;
          th_events = tr.Trace.events;
          th_postings = b.b_postings;
          th_intervals = b.b_intervals;
          th_loops =
            Array.map (fun sp -> { sp with lp_body = map.(sp.lp_body) }) b.b_spans
        })
      built
  in
  { db_digest = digest ts; db_symtab = symtab; db_table = shared;
    db_threads = threads }

(* {2 On-disk encoding}

   Records in backwards-reference order: symbols, loop bodies, then per
   thread the event log (tag 3) followed by its postings (tag 4, one
   record per called function, varint-delta positions), intervals
   (tag 5) and loop spans (tag 6). *)

let tag_symbol = 1
let tag_body = 2
let tag_thread = 3
let tag_postings = 4
let tag_intervals = 5
let tag_loops = 6

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let write_elems buf elems =
  Varint.write buf (Array.length elems);
  Array.iter
    (function
      | Nlr.Sym id ->
        Varint.write buf 0;
        Varint.write buf id
      | Nlr.Loop { body; count } ->
        Varint.write buf 1;
        Varint.write buf body;
        Varint.write buf count)
    elems

let read_elems s pos =
  let n, pos = Varint.read s pos in
  let pos = ref pos in
  let elems =
    Array.init n (fun _ ->
        let kind, p = Varint.read s !pos in
        match kind with
        | 0 ->
          let id, p = Varint.read s p in
          pos := p;
          Nlr.Sym id
        | 1 ->
          let body, p = Varint.read s p in
          let count, p = Varint.read s p in
          pos := p;
          Nlr.Loop { body; count }
        | k -> bad "unknown element kind %d" k)
  in
  (elems, !pos)

let payload tag f =
  let b = Buffer.create 128 in
  Buffer.add_char b (Char.chr tag);
  f b;
  Buffer.contents b

let encode db =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf Framing.magic;
  Array.iter
    (fun name ->
      Framing.add_record buf (payload tag_symbol (fun b -> Buffer.add_string b name)))
    (Symtab.names db.db_symtab);
  for id = 0 to Nlr.Loop_table.size db.db_table - 1 do
    Framing.add_record buf
      (payload tag_body (fun b -> write_elems b (Nlr.Loop_table.body db.db_table id)))
  done;
  Array.iteri
    (fun ti th ->
      Framing.add_record buf
        (payload tag_thread (fun b ->
             Varint.write b th.th_pid;
             Varint.write b th.th_tid;
             Varint.write b (if th.th_truncated then 1 else 0);
             Varint.write b (Array.length th.th_events);
             Array.iter (fun e -> Varint.write b (Event.encode e)) th.th_events));
      Array.iteri
        (fun func positions ->
          if Array.length positions > 0 then
            Framing.add_record buf
              (payload tag_postings (fun b ->
                   Varint.write b ti;
                   Varint.write b func;
                   Varint.write b (Array.length positions);
                   let prev = ref 0 in
                   Array.iter
                     (fun p ->
                       Varint.write b (p - !prev);
                       prev := p)
                     positions)))
        th.th_postings;
      Framing.add_record buf
        (payload tag_intervals (fun b ->
             Varint.write b ti;
             Varint.write b (Array.length th.th_intervals);
             let prev = ref 0 in
             Array.iter
               (fun (iv : Intervals.t) ->
                 Varint.write b iv.Intervals.iv_func;
                 Varint.write b (iv.Intervals.iv_start - !prev);
                 prev := iv.Intervals.iv_start;
                 Varint.write b (iv.Intervals.iv_stop - iv.Intervals.iv_start);
                 Varint.write b iv.Intervals.iv_depth;
                 Varint.write b (iv.Intervals.iv_caller + 1))
               th.th_intervals));
      Framing.add_record buf
        (payload tag_loops (fun b ->
             Varint.write b ti;
             Varint.write b (Array.length th.th_loops);
             Array.iter
               (fun sp ->
                 Varint.write b sp.lp_body;
                 Varint.write b sp.lp_count;
                 Varint.write b sp.lp_start;
                 Varint.write b (sp.lp_stop - sp.lp_start))
               th.th_loops)))
    db.db_threads;
  Buffer.contents buf

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": exists and is not a directory"))

let index_file ~dir ~digest = Filename.concat dir (digest ^ ".edb")

let save ~dir db =
  match
    mkdir_p dir;
    Framing.write_atomic ~path:(index_file ~dir ~digest:db.db_digest) (encode db)
  with
  | () ->
    Telemetry.Counter.incr c_saved;
    Ok ()
  | exception Sys_error reason -> Error reason
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))

(* decoding: strict — structural surprises are damage, and damage means
   rebuild, so there is no salvage path to keep consistent *)

type partial = {
  mutable p_truncated : bool;
  mutable p_events : Event.t array;
  mutable p_postings : (int * int array) list;
  mutable p_intervals : Intervals.t array;
  mutable p_loops : loop_span array;
}

let decode ~digest payloads =
  let symtab = Symtab.create () in
  let table = Nlr.Loop_table.create () in
  let threads = ref [] in
  (* (pid, tid) in record order *)
  let partials = Hashtbl.create 8 in
  let nth ti =
    match Hashtbl.find_opt partials ti with
    | Some p -> p
    | None -> bad "postings/intervals for unknown thread %d" ti
  in
  List.iter
    (fun s ->
      if String.length s = 0 then bad "empty record";
      let tag = Char.code s.[0] in
      let pos = 1 in
      if tag = tag_symbol then
        ignore (Symtab.intern symtab (String.sub s 1 (String.length s - 1)))
      else if tag = tag_body then begin
        let elems, pos = read_elems s pos in
        if pos <> String.length s then bad "trailing bytes in body record";
        ignore (Nlr.Loop_table.intern table elems)
      end
      else if tag = tag_thread then begin
        let pid, pos = Varint.read s pos in
        let tid, pos = Varint.read s pos in
        let trunc, pos = Varint.read s pos in
        let n, pos = Varint.read s pos in
        let pos = ref pos in
        let events =
          Array.init n (fun _ ->
              let e, p = Varint.read s !pos in
              pos := p;
              Event.decode e)
        in
        if !pos <> String.length s then bad "trailing bytes in thread record";
        let p =
          { p_truncated = trunc <> 0;
            p_events = events;
            p_postings = [];
            p_intervals = [||];
            p_loops = [||] }
        in
        Hashtbl.replace partials (List.length !threads) p;
        threads := (pid, tid) :: !threads
      end
      else if tag = tag_postings then begin
        let ti, pos = Varint.read s pos in
        let func, pos = Varint.read s pos in
        let n, pos = Varint.read s pos in
        let pos = ref pos in
        let prev = ref 0 in
        let positions =
          Array.init n (fun _ ->
              let d, p = Varint.read s !pos in
              pos := p;
              prev := !prev + d;
              !prev)
        in
        if !pos <> String.length s then bad "trailing bytes in postings record";
        if func >= Symtab.size symtab then bad "postings for unknown function";
        let p = nth ti in
        p.p_postings <- (func, positions) :: p.p_postings
      end
      else if tag = tag_intervals then begin
        let ti, pos = Varint.read s pos in
        let n, pos = Varint.read s pos in
        let pos = ref pos in
        let prev = ref 0 in
        let ivs =
          Array.init n (fun _ ->
              let func, p = Varint.read s !pos in
              let dstart, p = Varint.read s p in
              let len, p = Varint.read s p in
              let depth, p = Varint.read s p in
              let caller1, p = Varint.read s p in
              pos := p;
              prev := !prev + dstart;
              { Intervals.iv_func = func;
                iv_start = !prev;
                iv_stop = !prev + len;
                iv_depth = depth;
                iv_caller = caller1 - 1 })
        in
        if !pos <> String.length s then bad "trailing bytes in interval record";
        (nth ti).p_intervals <- ivs
      end
      else if tag = tag_loops then begin
        let ti, pos = Varint.read s pos in
        let n, pos = Varint.read s pos in
        let pos = ref pos in
        let spans =
          Array.init n (fun _ ->
              let body, p = Varint.read s !pos in
              let count, p = Varint.read s p in
              let start, p = Varint.read s p in
              let len, p = Varint.read s p in
              pos := p;
              if body >= Nlr.Loop_table.size table then
                bad "span for unknown loop body";
              { lp_body = body; lp_count = count; lp_start = start;
                lp_stop = start + len })
        in
        if !pos <> String.length s then bad "trailing bytes in loop record";
        (nth ti).p_loops <- spans
      end
      else bad "unknown record tag %d" tag)
    payloads;
  let n_funcs = Symtab.size symtab in
  let ids = Array.of_list (List.rev !threads) in
  let threads =
    Array.mapi
      (fun ti (pid, tid) ->
        let p = Hashtbl.find partials ti in
        let postings = Array.make n_funcs [||] in
        List.iter (fun (func, ps) -> postings.(func) <- ps) p.p_postings;
        { th_pid = pid;
          th_tid = tid;
          th_truncated = p.p_truncated;
          th_events = p.p_events;
          th_postings = postings;
          th_intervals = p.p_intervals;
          th_loops = p.p_loops })
      ids
  in
  { db_digest = digest; db_symtab = symtab; db_table = table;
    db_threads = threads }

let load ~dir ~digest =
  let path = index_file ~dir ~digest in
  if not (Sys.file_exists path) then Error "no index"
  else
    match Framing.read_file path with
    | exception Sys_error reason -> Error reason
    | image -> (
      match Framing.scan image with
      | Error reason -> Error reason
      | Ok payloads -> (
        match decode ~digest payloads with
        | db ->
          Telemetry.Counter.incr c_loads;
          Ok db
        | exception Bad reason -> Error reason
        | exception Invalid_argument reason -> Error reason))

let open_ ?(runner = sequential) ?dir ts =
  let dg = digest ts in
  match dir with
  | None -> (build ~runner ts, `Built)
  | Some d -> (
    match load ~dir:d ~digest:dg with
    | Ok db -> (db, `Loaded)
    | Error _ ->
      let db = build ~runner ts in
      (* best-effort persist: an unwritable store directory costs the
         warm path, never the query *)
      (match save ~dir:d db with Ok () | Error _ -> ());
      (db, `Built))

(* {2 Divergence} *)

let events_equal syma ea symb eb =
  match (ea, eb) with
  | Event.Call a, Event.Call b | Event.Return a, Event.Return b ->
    String.equal (Symtab.name syma a) (Symtab.name symb b)
  | _ -> false

let stream_divergence syma a symb b =
  let na = Array.length a and nb = Array.length b in
  let n = min na nb in
  let rec go i =
    if i < n then
      if events_equal syma a.(i) symb b.(i) then go (i + 1) else Some i
    else if na <> nb then Some n
    else None
  in
  go 0

let find_by_label ts l =
  Array.find_opt
    (fun tr -> Trace.label ~short:true tr = l || Trace.label tr = l)
    (Trace_set.traces ts)

let divergence_note ~normal ~faulty ~label =
  match (find_by_label normal label, find_by_label faulty label) with
  | Some n, Some f -> (
    let nsym = Trace_set.symtab normal and fsym = Trace_set.symtab faulty in
    match stream_divergence nsym n.Trace.events fsym f.Trace.events with
    | None ->
      Some
        (Printf.sprintf "  event db: trace %s: streams identical (%d events)\n"
           label (Array.length n.Trace.events))
    | Some pos ->
      let side sym (tr : Trace.t) =
        if pos < Array.length tr.Trace.events then
          Event.to_string sym tr.Trace.events.(pos)
        else "end of trace"
      in
      let hint =
        match
          if pos < Array.length f.Trace.events then Some (fsym, f.Trace.events.(pos))
          else if pos < Array.length n.Trace.events then Some (nsym, n.Trace.events.(pos))
          else None
        with
        | Some (sym, Event.Call id) ->
          Printf.sprintf "list %s on %s in %d..%d" (Symtab.name sym id) label pos
            (pos + 10)
        | _ -> Printf.sprintf "diverge on %s" label
      in
      Some
        (Printf.sprintf
           "  event db: trace %s: first divergence at event %d (normal: %s, \
            faulty: %s); drill down: difftrace query '%s'\n"
           label pos (side nsym n) (side fsym f) hint))
  | _ -> None
