(** The indexed event database (the drill-down layer).

    Every analysis surface above this one ends at a rendered string;
    the event database is the way back down: it derives, from the raw
    traces of one execution, (a) a per-function postings list of call
    positions, (b) a call-interval index per thread, (c) the NLR loop
    spans of each thread mapped to event positions, and (d) the
    time-ordered event log itself — everything {!Query} needs to answer
    drill-down questions without rescanning archives.

    Builds fan out per thread over an engine-provided {!runner} and the
    result persists as one CRC-framed file (see {!Framing}) named by
    the content digest of its source traces, so a warm rerun loads
    instead of rebuilding. All positions are event indices into the
    owning thread's event array — the stable coordinates quoted by
    diffNLR suspect renders. *)

module Event = Difftrace_trace.Event
module Symtab = Difftrace_trace.Symtab
module Trace_set = Difftrace_trace.Trace_set
module Nlr = Difftrace_nlr.Nlr

(** How to fan independent per-thread work out; mirrors
    [Engine.runner] without depending on [lib/core]. *)
type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

(** The in-order fallback runner. *)
val sequential : runner

(** One NLR loop instance of a thread — at any nesting depth — as a
    half-open event-position span [[lp_start, lp_stop)] covering the
    calls of its iterations. *)
type loop_span = {
  lp_body : int;  (** loop body ID in the database's shared table *)
  lp_count : int;  (** iteration count *)
  lp_start : int;
  lp_stop : int;
}

type thread = {
  th_pid : int;
  th_tid : int;
  th_truncated : bool;
  th_events : Event.t array;  (** the time-ordered event log *)
  th_postings : int array array;
      (** per function ID, the ascending positions of its [Call]
          events; indexed by function ID, empty for uncalled IDs *)
  th_intervals : Intervals.t array;  (** in call order *)
  th_loops : loop_span array;
}

type t = {
  db_digest : string;  (** hex content digest of the source traces *)
  db_symtab : Symtab.t;
  db_table : Nlr.Loop_table.t;  (** shared loop bodies, thread order *)
  db_threads : thread array;  (** in (pid, tid) order *)
}

(** [digest ts] is the content digest (hex) that namespaces the on-disk
    index of [ts]: symbol names plus every thread's identity and exact
    event stream. *)
val digest : Trace_set.t -> string

(** [label th] is the paper's thread label, short form (["5"], ["6.4"]). *)
val label : thread -> string

(** [find_thread db l] accepts both short and long labels. *)
val find_thread : t -> string -> thread option

(** [build ?runner ts] indexes every thread of [ts], fanning the
    per-thread work over [runner]. Deterministic: the same traces
    produce the same database under any runner. Bumps the
    [eventdb.builds] counter. *)
val build : ?runner:runner -> Trace_set.t -> t

(** [save ~dir db] writes [dir/<digest>.edb] atomically, creating
    [dir] as needed. *)
val save : dir:string -> t -> (unit, string) result

(** [load ~dir ~digest] reads an index written by {!save}. Any damage
    — missing file, bad magic, CRC mismatch, structural decode failure
    — is an [Error]; the caller rebuilds. Bumps [eventdb.loads] on
    success. *)
val load : dir:string -> digest:string -> (t, string) result

(** [open_ ?runner ?dir ts] is the warm path: digest [ts], load the
    index from [dir] if present and intact, else build (and, with a
    [dir], persist best-effort). *)
val open_ : ?runner:runner -> ?dir:string -> Trace_set.t -> t * [ `Built | `Loaded ]

(** [body_contains table ~outer ~inner] — does loop body [outer] equal
    or transitively contain loop body [inner]? *)
val body_contains : Nlr.Loop_table.t -> outer:int -> inner:int -> bool

(** [stream_divergence syma a symb b] is the first event position where
    the two streams disagree (comparing kind and function {e name}, so
    streams from different symbol tables compare correctly), or [None]
    when one is a prefix of the other and lengths match — i.e. the
    streams are identical. A strict prefix diverges at the shorter
    length. *)
val stream_divergence :
  Symtab.t -> Event.t array -> Symtab.t -> Event.t array -> int option

(** [divergence_note ~normal ~faulty ~label] is the one-line event-DB
    footer appended under a diffNLR suspect render: the first raw-event
    divergence of that thread across the two runs, plus a ready-made
    [difftrace query] to drill into it. [None] when the label is
    missing from either run. *)
val divergence_note :
  normal:Trace_set.t -> faulty:Trace_set.t -> label:string -> string option
