(** The drill-down query language over {!Eventdb}.

    One query is one line of text. Function and marker names are symbol
    names; [T] is a thread label ([5] or [6.4]); positions are event
    indices into the thread's event array. The grammar:

    {v
    count F [on T] [in LO..HI | between M1 and M2]
    list  F [on T] [in LO..HI | between M1 and M2] [limit N]
    sites F [under LK | under G] [on T]
    loops [on T]
    diverge [on T]                      (needs a second run)
    threads
    funcs [limit N]
    v}

    [in LO..HI] restricts to event positions [LO <= p < HI]. A marker
    is [name] or [name#k] (the k-th call of [name] on that thread,
    1-based); [between M1 and M2] spans from M1's call to M2's call
    inclusive, per thread, and threads missing a marker contribute
    nothing. [under LK] keeps calls inside iterations of loop [LK] (the
    database's loop table, see [loops]); [under G] keeps calls nested
    anywhere inside an invocation of function [G]. *)

type marker = { m_func : string; m_occ : int }
type range = Whole | Span of int * int | Between of marker * marker
type under = U_loop of int | U_func of string

type t =
  | Count of { fn : string; thread : string option; range : range }
  | List of { fn : string; thread : string option; range : range; limit : int }
  | Sites of { fn : string; under : under option; thread : string option }
  | Loops of { thread : string option }
  | Diverge of { thread : string option }
  | Threads
  | Functions of { limit : int }

(** [parse text] — [Error reason] on a malformed query; never raises. *)
val parse : string -> (t, string) result

(** [needs_against q] — does [q] compare two runs? *)
val needs_against : t -> bool

type hit = { h_thread : string; h_pos : int; h_depth : int; h_caller : string }

type result =
  | R_count of { subject : string; total : int }
  | R_list of { subject : string; total : int; hits : hit list }
  | R_sites of {
      subject : string;
      rows : (string * string * int * int) list;
          (** thread, caller, calls, first position *)
    }
  | R_loops of {
      rows : (string * string * int * int * int * string) list;
          (** loop label, thread, instances, total iterations, first
              position, rendered body *)
    }
  | R_diverge of {
      compared : int;
      first : (string * int) option;  (** thread, position *)
      rows : (string * string * string * string) list;
          (** thread, position (or note), normal event, faulty event —
              divergent or one-sided threads only *)
    }
  | R_threads of (string * int * int * int * bool) list
      (** label, events, calls, loops, truncated *)
  | R_funcs of { total : int; rows : (string * int * int) list }
      (** name, calls, threads *)

type error =
  | Unknown_thread of string
  | Unknown_loop of string
  | Needs_against

val error_to_string : error -> string

(** [eval db ?against q]. [against] is the B run of [diverge] (in the
    paper's terms [db] is the normal run, [against] the faulty one). *)
val eval :
  Eventdb.t -> ?against:Eventdb.t -> t -> (result, error) Stdlib.result

(** [kind r] is the stable wire tag of the result shape ("count",
    "list", "sites", "loops", "diverge", "threads", "functions"). *)
val kind : result -> string

(** [size r] is the headline match count: total matches for count/list,
    row count otherwise. *)
val size : result -> int

(** [render r] is the CLI-byte-identical text of a result. *)
val render : result -> string
