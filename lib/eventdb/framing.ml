module Crc32 = Difftrace_util.Crc32
module Varint = Difftrace_util.Varint

let magic = "difftrace-eventdb 1\n"

let add_record buf payload =
  Varint.write buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.add_string buf (Crc32.to_le_bytes (Crc32.string payload))

let scan image =
  let mlen = String.length magic in
  if String.length image < mlen || String.sub image 0 mlen <> magic then
    Error "unrecognized magic/version"
  else begin
    let total = String.length image in
    let payloads = ref [] in
    let damage = ref None in
    let pos = ref mlen in
    (try
       while !pos < total && !damage = None do
         let len, p = Varint.read image !pos in
         if p + len + 4 > total then
           damage := Some (Printf.sprintf "truncated record at byte %d" !pos)
         else begin
           let payload = String.sub image p len in
           let crc = Crc32.of_le_bytes image (p + len) in
           if Crc32.string payload <> crc then
             damage := Some (Printf.sprintf "CRC mismatch at byte %d" !pos)
           else begin
             payloads := payload :: !payloads;
             pos := p + len + 4
           end
         end
       done
     with Invalid_argument _ ->
       damage := Some (Printf.sprintf "malformed framing at byte %d" !pos));
    match !damage with
    | Some reason -> Error reason
    | None -> Ok (List.rev !payloads)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path
