(** CRC-framed record files for the event database.

    Same shape as the analysis store's file: a magic line, then records
    of (varint payload length, payload, CRC-32 of the payload as 4 LE
    bytes). Payload byte 0 is the record tag. A flipped bit anywhere in
    a record is detected before any structural decoding happens. *)

val magic : string

(** [add_record buf payload] appends one framed record. *)
val add_record : Buffer.t -> string -> unit

(** [scan image] splits a file image into CRC-checked payloads. Returns
    [Ok payloads] only when the magic matches, every record checks out
    and no trailing bytes remain — an index is rebuilt wholesale on any
    damage, so there is no salvage mode here. Never raises. *)
val scan : string -> (string list, string) result

(** [read_file path] is the whole file as a string.
    Raises [Sys_error] on IO failure. *)
val read_file : string -> string

(** [write_atomic ~path contents] writes via a [.tmp] sibling and
    renames into place. Raises [Sys_error] on IO failure. *)
val write_atomic : path:string -> string -> unit
