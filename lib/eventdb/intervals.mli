(** Call intervals: the [call .. return] span of every invocation.

    One interval per [Call] event of a thread's trace, in call order.
    Positions are event indices into the thread's event array, so an
    interval pins an invocation to the exact byte-stable places the
    event database reports. Calls whose return never arrives (hung or
    truncated threads) stay open: their [iv_stop] is the event count. *)

type t = {
  iv_func : int;  (** callee function ID *)
  iv_start : int;  (** event position of the [Call] *)
  iv_stop : int;
      (** event position of the matching [Return], or the event count
          when the call never returned *)
  iv_depth : int;  (** nesting depth; 0 = top level *)
  iv_caller : int;  (** function ID of the enclosing call, -1 at depth 0 *)
}

(** [of_events events] matches calls to returns with a stack walk and
    returns every interval in [iv_start] order. Tolerant of malformed
    streams: an unmatched [Return] closes every frame above its match
    (or is dropped when nothing matches), and frames still open at the
    end of the stream stay open. Never raises. *)
val of_events : Difftrace_trace.Event.t array -> t array

(** [contains iv pos] — is event position [pos] inside [iv], excluding
    the [Call] event itself? *)
val contains : t -> int -> bool
