module Event = Difftrace_trace.Event

type t = {
  iv_func : int;
  iv_start : int;
  iv_stop : int;
  iv_depth : int;
  iv_caller : int;
}

(* mutable while the stream is being walked; frozen into [t] at the end *)
type frame = {
  f_func : int;
  f_start : int;
  f_depth : int;
  f_caller : int;
  mutable f_stop : int;
}

let of_events events =
  let n = Array.length events in
  let order = ref [] in
  (* every frame, in call order *)
  let stack = ref [] in
  let depth = ref 0 in
  let push func pos =
    let caller = match !stack with [] -> -1 | top :: _ -> top.f_func in
    let f =
      { f_func = func;
        f_start = pos;
        f_depth = !depth;
        f_caller = caller;
        f_stop = -1 }
    in
    stack := f :: !stack;
    incr depth;
    order := f :: !order
  in
  let close pos func =
    (* close up to and including the deepest frame of [func]; a return
       with no open matching call is dropped *)
    if List.exists (fun f -> f.f_func = func) !stack then begin
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | top :: rest ->
          top.f_stop <- pos;
          stack := rest;
          decr depth;
          if top.f_func = func then continue := false
      done
    end
  in
  Array.iteri
    (fun pos e ->
      match e with
      | Event.Call id -> push id pos
      | Event.Return id -> close pos id)
    events;
  List.iter (fun f -> if f.f_stop < 0 then f.f_stop <- n) !stack;
  let frames = Array.of_list (List.rev !order) in
  Array.map
    (fun f ->
      { iv_func = f.f_func;
        iv_start = f.f_start;
        iv_stop = f.f_stop;
        iv_depth = f.f_depth;
        iv_caller = f.f_caller })
    frames

let contains iv pos = pos > iv.iv_start && pos <= iv.iv_stop
