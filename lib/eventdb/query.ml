module Event = Difftrace_trace.Event
module Symtab = Difftrace_trace.Symtab
module Nlr = Difftrace_nlr.Nlr
module Texttable = Difftrace_util.Texttable

type marker = { m_func : string; m_occ : int }
type range = Whole | Span of int * int | Between of marker * marker
type under = U_loop of int | U_func of string

type t =
  | Count of { fn : string; thread : string option; range : range }
  | List of { fn : string; thread : string option; range : range; limit : int }
  | Sites of { fn : string; under : under option; thread : string option }
  | Loops of { thread : string option }
  | Diverge of { thread : string option }
  | Threads
  | Functions of { limit : int }

(* {2 Parsing} *)

let default_limit = 20

let parse_int tok what =
  match int_of_string_opt tok with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" what tok)

let parse_marker tok =
  match String.index_opt tok '#' with
  | None -> Ok { m_func = tok; m_occ = 1 }
  | Some i -> (
    let name = String.sub tok 0 i in
    let occ = String.sub tok (i + 1) (String.length tok - i - 1) in
    if name = "" then Error (Printf.sprintf "marker %S has no function name" tok)
    else
      match int_of_string_opt occ with
      | Some n when n >= 1 -> Ok { m_func = name; m_occ = n }
      | _ -> Error (Printf.sprintf "marker %S: occurrence must be a number >= 1" tok))

let parse_span tok =
  match String.index_opt tok '.' with
  | Some i
    when i + 1 < String.length tok
         && tok.[i + 1] = '.'
         && i > 0
         && i + 2 < String.length tok -> (
    let lo = String.sub tok 0 i in
    let hi = String.sub tok (i + 2) (String.length tok - i - 2) in
    match (int_of_string_opt lo, int_of_string_opt hi) with
    | Some lo, Some hi when lo >= 0 && hi >= lo -> Ok (lo, hi)
    | _ -> Error (Printf.sprintf "bad interval %S (want LO..HI, 0 <= LO <= HI)" tok))
  | _ -> Error (Printf.sprintf "bad interval %S (want LO..HI)" tok)

let parse_under tok =
  let is_loop =
    String.length tok >= 2
    && tok.[0] = 'L'
    && String.for_all (fun c -> c >= '0' && c <= '9')
         (String.sub tok 1 (String.length tok - 1))
  in
  if is_loop then
    (* all-digit, but possibly wider than an int ("L99999999999999999999") *)
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n -> Ok (U_loop n)
    | None -> Error (Printf.sprintf "loop label %S is out of range" tok)
  else Ok (U_func tok)

(* the optional clauses shared by count/list/sites, in any order *)
type clauses = {
  c_thread : string option;
  c_range : range;
  c_limit : int option;
  c_under : under option;
}

let rec parse_clauses ~allow acc = function
  | [] -> Ok acc
  | "on" :: t :: rest when List.mem `On allow ->
    if acc.c_thread <> None then Error "duplicate 'on' clause"
    else parse_clauses ~allow { acc with c_thread = Some t } rest
  | [ "on" ] -> Error "'on' needs a thread label"
  | "in" :: s :: rest when List.mem `Range allow -> (
    if acc.c_range <> Whole then Error "only one 'in'/'between' clause"
    else
      match parse_span s with
      | Error e -> Error e
      | Ok (lo, hi) -> parse_clauses ~allow { acc with c_range = Span (lo, hi) } rest)
  | [ "in" ] -> Error "'in' needs an interval LO..HI"
  | "between" :: m1 :: "and" :: m2 :: rest when List.mem `Range allow -> (
    if acc.c_range <> Whole then Error "only one 'in'/'between' clause"
    else
      match (parse_marker m1, parse_marker m2) with
      | Error e, _ | _, Error e -> Error e
      | Ok m1, Ok m2 ->
        parse_clauses ~allow { acc with c_range = Between (m1, m2) } rest)
  | "between" :: _ when List.mem `Range allow ->
    Error "'between' needs two markers: between M1 and M2"
  | "limit" :: n :: rest when List.mem `Limit allow -> (
    match parse_int n "limit" with
    | Error e -> Error e
    | Ok n when n >= 1 -> parse_clauses ~allow { acc with c_limit = Some n } rest
    | Ok _ -> Error "limit must be >= 1")
  | [ "limit" ] -> Error "'limit' needs a number"
  | "under" :: u :: rest when List.mem `Under allow -> (
    if acc.c_under <> None then Error "duplicate 'under' clause"
    else
      match parse_under u with
      | Error e -> Error e
      | Ok u -> parse_clauses ~allow { acc with c_under = Some u } rest)
  | [ "under" ] -> Error "'under' needs a loop label or function name"
  | tok :: _ -> Error (Printf.sprintf "unexpected token %S" tok)

let empty_clauses =
  { c_thread = None; c_range = Whole; c_limit = None; c_under = None }

let parse text =
  let toks =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let grammar_hint =
    "queries: count F | list F | sites F | loops | diverge | threads | funcs \
     (see MANUAL.md)"
  in
  match toks with
  | [] -> Error ("empty query; " ^ grammar_hint)
  | "count" :: fn :: rest when fn <> "" -> (
    match parse_clauses ~allow:[ `On; `Range ] empty_clauses rest with
    | Error e -> Error e
    | Ok c -> Ok (Count { fn; thread = c.c_thread; range = c.c_range }))
  | [ "count" ] -> Error "count needs a function name"
  | "list" :: fn :: rest when fn <> "" -> (
    match parse_clauses ~allow:[ `On; `Range; `Limit ] empty_clauses rest with
    | Error e -> Error e
    | Ok c ->
      Ok
        (List
           { fn;
             thread = c.c_thread;
             range = c.c_range;
             limit = Option.value c.c_limit ~default:default_limit }))
  | [ "list" ] -> Error "list needs a function name"
  | "sites" :: fn :: rest when fn <> "" -> (
    match parse_clauses ~allow:[ `On; `Under ] empty_clauses rest with
    | Error e -> Error e
    | Ok c -> Ok (Sites { fn; under = c.c_under; thread = c.c_thread }))
  | [ "sites" ] -> Error "sites needs a function name"
  | "loops" :: rest -> (
    match parse_clauses ~allow:[ `On ] empty_clauses rest with
    | Error e -> Error e
    | Ok c -> Ok (Loops { thread = c.c_thread }))
  | "diverge" :: rest -> (
    match parse_clauses ~allow:[ `On ] empty_clauses rest with
    | Error e -> Error e
    | Ok c -> Ok (Diverge { thread = c.c_thread }))
  | [ "threads" ] -> Ok Threads
  | "threads" :: _ -> Error "threads takes no arguments"
  | ("funcs" | "functions") :: rest -> (
    match parse_clauses ~allow:[ `Limit ] empty_clauses rest with
    | Error e -> Error e
    | Ok c -> Ok (Functions { limit = Option.value c.c_limit ~default:default_limit }))
  | verb :: _ -> Error (Printf.sprintf "unknown query %S; %s" verb grammar_hint)

let needs_against = function
  | Diverge _ -> true
  | Count _ | List _ | Sites _ | Loops _ | Threads | Functions _ -> false

(* {2 Evaluation} *)

type hit = { h_thread : string; h_pos : int; h_depth : int; h_caller : string }

type result =
  | R_count of { subject : string; total : int }
  | R_list of { subject : string; total : int; hits : hit list }
  | R_sites of { subject : string; rows : (string * string * int * int) list }
  | R_loops of { rows : (string * string * int * int * int * string) list }
  | R_diverge of {
      compared : int;
      first : (string * int) option;
      rows : (string * string * string * string) list;
    }
  | R_threads of (string * int * int * int * bool) list
  | R_funcs of { total : int; rows : (string * int * int) list }

type error =
  | Unknown_thread of string
  | Unknown_loop of string
  | Needs_against

let error_to_string = function
  | Unknown_thread l -> Printf.sprintf "unknown thread %s" l
  | Unknown_loop l -> Printf.sprintf "unknown loop %s" l
  | Needs_against -> "this query compares two runs; provide a second source"

let ( let* ) = Result.bind

let selected (db : Eventdb.t) = function
  | None -> Ok (Array.to_list db.Eventdb.db_threads)
  | Some l -> (
    match Eventdb.find_thread db l with
    | Some th -> Ok [ th ]
    | None -> Error (Unknown_thread l))

let postings_of (db : Eventdb.t) (th : Eventdb.thread) fn =
  match Symtab.find_opt db.Eventdb.db_symtab fn with
  | None -> [||]
  | Some id ->
    if id < Array.length th.Eventdb.th_postings then th.Eventdb.th_postings.(id)
    else [||]

let marker_pos db th m =
  let ps = postings_of db th m.m_func in
  if m.m_occ <= Array.length ps then Some ps.(m.m_occ - 1) else None

(* the half-open event-position window a range denotes on one thread;
   [None] when a marker is absent there *)
let resolve_range db (th : Eventdb.thread) = function
  | Whole -> Some (0, Array.length th.Eventdb.th_events)
  | Span (lo, hi) -> Some (lo, min hi (Array.length th.Eventdb.th_events))
  | Between (m1, m2) -> (
    match (marker_pos db th m1, marker_pos db th m2) with
    | Some p1, Some p2 when p2 >= p1 -> Some (p1, p2 + 1)
    | _ -> None)

(* the interval opened by the call at [pos]; postings positions are
   exactly the interval starts, and intervals are sorted by start *)
let interval_at (th : Eventdb.thread) pos =
  let ivs = th.Eventdb.th_intervals in
  let lo = ref 0 and hi = ref (Array.length ivs - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s = ivs.(mid).Intervals.iv_start in
    if s = pos then begin
      found := Some ivs.(mid);
      lo := !hi + 1
    end
    else if s < pos then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let caller_name (db : Eventdb.t) (th : Eventdb.thread) pos =
  match interval_at th pos with
  | Some iv when iv.Intervals.iv_caller >= 0 ->
    Symtab.name db.Eventdb.db_symtab iv.Intervals.iv_caller
  | _ -> "-"

let depth_at th pos =
  match interval_at th pos with
  | Some iv -> iv.Intervals.iv_depth
  | None -> 0

let marker_to_string m =
  if m.m_occ = 1 then m.m_func else Printf.sprintf "%s#%d" m.m_func m.m_occ

let range_suffix = function
  | Whole -> ""
  | Span (lo, hi) -> Printf.sprintf " in %d..%d" lo hi
  | Between (m1, m2) ->
    Printf.sprintf " between %s and %s" (marker_to_string m1) (marker_to_string m2)

let thread_suffix = function None -> "" | Some t -> " on " ^ t

let matches db th fn range =
  match resolve_range db th range with
  | None -> [||]
  | Some (lo, hi) ->
    postings_of db th fn |> Array.to_list
    |> List.filter (fun p -> p >= lo && p < hi)
    |> Array.of_list

let under_filter db (th : Eventdb.thread) = function
  | None -> Ok (fun _ -> true)
  | Some (U_loop k) ->
    if k >= Nlr.Loop_table.size db.Eventdb.db_table then
      Error (Unknown_loop (Nlr.Loop_table.label k))
    else
      Ok
        (fun p ->
          Array.exists
            (fun (sp : Eventdb.loop_span) ->
              sp.Eventdb.lp_body = k
              && p >= sp.Eventdb.lp_start
              && p < sp.Eventdb.lp_stop)
            th.Eventdb.th_loops)
  | Some (U_func g) -> (
    match Symtab.find_opt db.Eventdb.db_symtab g with
    | None -> Ok (fun _ -> false)
    | Some gid ->
      let gvs =
        Array.to_list th.Eventdb.th_intervals
        |> List.filter (fun (iv : Intervals.t) -> iv.Intervals.iv_func = gid)
      in
      Ok (fun p -> List.exists (fun iv -> Intervals.contains iv p) gvs))

let under_suffix = function
  | None -> ""
  | Some (U_loop k) -> " under " ^ Nlr.Loop_table.label k
  | Some (U_func g) -> " under " ^ g

let eval_diverge (a : Eventdb.t) (b : Eventdb.t) thread =
  let labels =
    let of_db (db : Eventdb.t) =
      Array.to_list (Array.map Eventdb.label db.Eventdb.db_threads)
    in
    let la = of_db a in
    la @ List.filter (fun l -> not (List.mem l la)) (of_db b)
  in
  let* labels =
    match thread with
    | None -> Ok labels
    | Some l -> if List.mem l labels then Ok [ l ] else Error (Unknown_thread l)
  in
  let asym = a.Eventdb.db_symtab and bsym = b.Eventdb.db_symtab in
  let first = ref None in
  let rows =
    List.filter_map
      (fun l ->
        match (Eventdb.find_thread a l, Eventdb.find_thread b l) with
        | Some ta, Some tb -> (
          match
            Eventdb.stream_divergence asym ta.Eventdb.th_events bsym
              tb.Eventdb.th_events
          with
          | None -> None
          | Some p ->
            let side sym (th : Eventdb.thread) =
              if p < Array.length th.Eventdb.th_events then
                Event.to_string sym th.Eventdb.th_events.(p)
              else "end of trace"
            in
            (match !first with
            | Some (_, best) when best <= p -> ()
            | _ -> first := Some (l, p));
            Some (l, string_of_int p, side asym ta, side bsym tb))
        | Some ta, None ->
          Some
            ( l,
              "-",
              Printf.sprintf "%d events" (Array.length ta.Eventdb.th_events),
              "missing thread" )
        | None, Some tb ->
          Some
            ( l,
              "-",
              "missing thread",
              Printf.sprintf "%d events" (Array.length tb.Eventdb.th_events) )
        | None, None -> None)
      labels
  in
  Ok (R_diverge { compared = List.length labels; first = !first; rows })

let eval db ?against q =
  match q with
  | Count { fn; thread; range } ->
    let* ths = selected db thread in
    let total =
      List.fold_left (fun acc th -> acc + Array.length (matches db th fn range)) 0 ths
    in
    Ok
      (R_count
         { subject = fn ^ thread_suffix thread ^ range_suffix range; total })
  | List { fn; thread; range; limit } ->
    let* ths = selected db thread in
    let all =
      List.concat_map
        (fun th ->
          let l = Eventdb.label th in
          Array.to_list (matches db th fn range)
          |> List.map (fun p ->
                 { h_thread = l;
                   h_pos = p;
                   h_depth = depth_at th p;
                   h_caller = caller_name db th p }))
        ths
    in
    let total = List.length all in
    let hits = List.filteri (fun i _ -> i < limit) all in
    Ok
      (R_list
         { subject = fn ^ thread_suffix thread ^ range_suffix range; total; hits })
  | Sites { fn; under; thread } ->
    let* ths = selected db thread in
    let* rows =
      List.fold_left
        (fun acc th ->
          let* acc = acc in
          let* keep = under_filter db th under in
          let l = Eventdb.label th in
          let sites = ref [] in
          (* (caller, count, first) in first-seen order *)
          Array.iter
            (fun p ->
              if keep p then begin
                let caller = caller_name db th p in
                match List.assoc_opt caller !sites with
                | Some (count, firstp) ->
                  sites :=
                    (caller, (count + 1, firstp))
                    :: List.remove_assoc caller !sites
                | None -> sites := (caller, (1, p)) :: !sites
              end)
            (postings_of db th fn);
          let here =
            List.rev !sites
            |> List.map (fun (caller, (count, firstp)) -> (l, caller, count, firstp))
            |> List.sort (fun (_, _, _, fa) (_, _, _, fb) -> compare fa fb)
          in
          Ok (acc @ here))
        (Ok []) ths
    in
    Ok
      (R_sites
         { subject = fn ^ under_suffix under ^ thread_suffix thread; rows })
  | Loops { thread } ->
    let* ths = selected db thread in
    let rows =
      List.concat_map
        (fun th ->
          let l = Eventdb.label th in
          let groups = ref [] in
          (* body -> (instances, iters, first) *)
          Array.iter
            (fun (sp : Eventdb.loop_span) ->
              match List.assoc_opt sp.Eventdb.lp_body !groups with
              | Some (n, iters, first) ->
                groups :=
                  ( sp.Eventdb.lp_body,
                    (n + 1, iters + sp.Eventdb.lp_count, min first sp.Eventdb.lp_start)
                  )
                  :: List.remove_assoc sp.Eventdb.lp_body !groups
              | None ->
                groups :=
                  (sp.Eventdb.lp_body, (1, sp.Eventdb.lp_count, sp.Eventdb.lp_start))
                  :: !groups)
            th.Eventdb.th_loops;
          List.rev !groups
          |> List.map (fun (body, (n, iters, first)) ->
                 ( Nlr.Loop_table.label body,
                   l,
                   n,
                   iters,
                   first,
                   Nlr.body_to_string ~table:db.Eventdb.db_table
                     db.Eventdb.db_symtab body )))
        ths
    in
    Ok (R_loops { rows })
  | Diverge { thread } -> (
    match against with
    | None -> Error Needs_against
    | Some b -> eval_diverge db b thread)
  | Threads ->
    Ok
      (R_threads
         (Array.to_list db.Eventdb.db_threads
         |> List.map (fun (th : Eventdb.thread) ->
                ( Eventdb.label th,
                  Array.length th.Eventdb.th_events,
                  Array.length th.Eventdb.th_intervals,
                  Array.length th.Eventdb.th_loops,
                  th.Eventdb.th_truncated ))))
  | Functions { limit } ->
    let names = Symtab.names db.Eventdb.db_symtab in
    let rows =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let calls, threads =
               Array.fold_left
                 (fun (c, t) (th : Eventdb.thread) ->
                   let n =
                     if id < Array.length th.Eventdb.th_postings then
                       Array.length th.Eventdb.th_postings.(id)
                     else 0
                   in
                   (c + n, if n > 0 then t + 1 else t))
                 (0, 0) db.Eventdb.db_threads
             in
             (name, calls, threads))
           names)
      |> List.filter (fun (_, calls, _) -> calls > 0)
      |> List.sort (fun (na, ca, _) (nb, cb, _) ->
             if ca <> cb then compare cb ca else compare na nb)
    in
    let total = List.length rows in
    Ok (R_funcs { total; rows = List.filteri (fun i _ -> i < limit) rows })

(* {2 Rendering} *)

let kind = function
  | R_count _ -> "count"
  | R_list _ -> "list"
  | R_sites _ -> "sites"
  | R_loops _ -> "loops"
  | R_diverge _ -> "diverge"
  | R_threads _ -> "threads"
  | R_funcs _ -> "functions"

let size = function
  | R_count { total; _ } -> total
  | R_list { total; _ } -> total
  | R_sites { rows; _ } -> List.length rows
  | R_loops { rows } -> List.length rows
  | R_diverge { rows; _ } -> List.length rows
  | R_threads rows -> List.length rows
  | R_funcs { rows; _ } -> List.length rows

let render = function
  | R_count { subject; total } -> Printf.sprintf "calls of %s: %d\n" subject total
  | R_list { subject; total; hits } ->
    let head =
      if total > List.length hits then
        Printf.sprintf "calls of %s: %d (showing %d)\n" subject total
          (List.length hits)
      else Printf.sprintf "calls of %s: %d\n" subject total
    in
    if hits = [] then head
    else
      head
      ^ Texttable.render
          ~aligns:[ Texttable.Right; Left; Right; Left ]
          ~headers:[ "Pos"; "Thread"; "Depth"; "Caller" ]
          (List.map
             (fun h ->
               [ string_of_int h.h_pos;
                 h.h_thread;
                 string_of_int h.h_depth;
                 h.h_caller ])
             hits)
  | R_sites { subject; rows } ->
    let head =
      Printf.sprintf "call sites of %s: %d site(s)\n" subject (List.length rows)
    in
    if rows = [] then head
    else
      head
      ^ Texttable.render
          ~aligns:[ Texttable.Left; Left; Right; Right ]
          ~headers:[ "Thread"; "Caller"; "Calls"; "First" ]
          (List.map
             (fun (th, caller, calls, first) ->
               [ th; caller; string_of_int calls; string_of_int first ])
             rows)
  | R_loops { rows } ->
    if rows = [] then "no loops\n"
    else
      Texttable.render
        ~aligns:[ Texttable.Left; Left; Right; Right; Right; Left ]
        ~headers:[ "Loop"; "Thread"; "Instances"; "Iterations"; "First"; "Body" ]
        (List.map
           (fun (label, th, n, iters, first, body) ->
             [ label;
               th;
               string_of_int n;
               string_of_int iters;
               string_of_int first;
               body ])
           rows)
  | R_diverge { compared; first; rows } ->
    let head =
      match first with
      | Some (th, p) ->
        Printf.sprintf "first divergence: thread %s at event %d (%d threads compared)\n"
          th p compared
      | None ->
        if rows = [] then
          Printf.sprintf "runs are identical (%d threads compared)\n" compared
        else Printf.sprintf "no event divergence on shared threads (%d compared)\n" compared
    in
    if rows = [] then head
    else
      head
      ^ Texttable.render
          ~aligns:[ Texttable.Left; Right; Left; Left ]
          ~headers:[ "Thread"; "Event"; "Normal"; "Faulty" ]
          (List.map (fun (th, p, a, b) -> [ th; p; a; b ]) rows)
  | R_threads rows ->
    Texttable.render
      ~aligns:[ Texttable.Left; Right; Right; Right; Left ]
      ~headers:[ "Thread"; "Events"; "Calls"; "Loops"; "Truncated" ]
      (List.map
         (fun (l, events, calls, loops, truncated) ->
           [ l;
             string_of_int events;
             string_of_int calls;
             string_of_int loops;
             (if truncated then "yes" else "no") ])
         rows)
  | R_funcs { total; rows } ->
    let head =
      if total > List.length rows then
        Printf.sprintf "functions: %d (showing %d)\n" total (List.length rows)
      else Printf.sprintf "functions: %d\n" total
    in
    if rows = [] then head
    else
      head
      ^ Texttable.render
          ~aligns:[ Texttable.Left; Right; Right ]
          ~headers:[ "Function"; "Calls"; "Threads" ]
          (List.map
             (fun (name, calls, threads) ->
               [ name; string_of_int calls; string_of_int threads ])
             rows)
