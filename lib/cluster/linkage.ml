let c_merges = Difftrace_obs.Telemetry.Counter.make "linkage.merges"

type method_ = Single | Complete | Average | Weighted | Centroid | Median | Ward

let method_name = function
  | Single -> "single"
  | Complete -> "complete"
  | Average -> "average"
  | Weighted -> "weighted"
  | Centroid -> "centroid"
  | Median -> "median"
  | Ward -> "ward"

let method_of_string = function
  | "single" -> Single
  | "complete" -> Complete
  | "average" -> Average
  | "weighted" -> Weighted
  | "centroid" -> Centroid
  | "median" -> Median
  | "ward" -> Ward
  | s -> invalid_arg ("Linkage.method_of_string: " ^ s)

let all_methods = [ Single; Complete; Average; Weighted; Centroid; Median; Ward ]

type merge = { a : int; b : int; dist : float; size : int }
type t = { n : int; merges : merge array }

(* Centroid, median and ward obey Lance–Williams on squared distances;
   the reported height is the square root (SciPy's convention). *)
let squared_space = function Centroid | Median | Ward -> true | Single | Complete | Average | Weighted -> false

(* d(k, i∪j) from d(k,i), d(k,j), d(i,j) and the cluster sizes. *)
let lance_williams meth ~ni ~nj ~nk dki dkj dij =
  let fi = float_of_int ni
  and fj = float_of_int nj
  and fk = float_of_int nk in
  match meth with
  | Single -> Float.min dki dkj
  | Complete -> Float.max dki dkj
  | Average -> ((fi *. dki) +. (fj *. dkj)) /. (fi +. fj)
  | Weighted -> 0.5 *. (dki +. dkj)
  | Centroid ->
    let s = fi +. fj in
    ((fi /. s) *. dki) +. ((fj /. s) *. dkj) -. (fi *. fj /. (s *. s) *. dij)
  | Median -> (0.5 *. dki) +. (0.5 *. dkj) -. (0.25 *. dij)
  | Ward ->
    let s = fk +. fi +. fj in
    (((fk +. fi) *. dki) +. ((fk +. fj) *. dkj) -. (fk *. dij)) /. s

let validate m =
  let n = Array.length m in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Linkage.cluster: not square";
      if Float.abs m.(i).(i) > 1e-12 then
        invalid_arg "Linkage.cluster: nonzero diagonal";
      Array.iteri
        (fun j v ->
          if Float.abs (v -. m.(j).(i)) > 1e-9 then
            invalid_arg "Linkage.cluster: not symmetric")
        row)
    m;
  n

let cluster meth m =
  let n = validate m in
  if n = 0 then invalid_arg "Linkage.cluster: empty matrix";
  let sq = squared_space meth in
  (* dist.(i).(j) between active clusters, in working space *)
  let size = 2 * n in
  let d = Array.make_matrix size size nan in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      d.(i).(j) <- (if sq then m.(i).(j) *. m.(i).(j) else m.(i).(j))
    done
  done;
  let active = Array.make size false in
  let csize = Array.make size 0 in
  for i = 0 to n - 1 do
    active.(i) <- true;
    csize.(i) <- 1
  done;
  let merges = ref [] in
  for step = 0 to n - 2 do
    (* find the closest active pair; ties by smallest (a, b) *)
    let best = ref (-1, -1, infinity) in
    for i = 0 to n + step - 1 do
      if active.(i) then
        for j = i + 1 to n + step - 1 do
          if active.(j) then
            let _, _, bd = !best in
            if d.(i).(j) < bd -. 1e-15 then best := (i, j, d.(i).(j))
        done
    done;
    let a, b, dij = !best in
    if a < 0 then invalid_arg "Linkage.cluster: disconnected (nan distances?)";
    let newc = n + step in
    let ni = csize.(a) and nj = csize.(b) in
    (* distances from every other active cluster to the new one *)
    for k = 0 to newc - 1 do
      if active.(k) && k <> a && k <> b then begin
        let v =
          lance_williams meth ~ni ~nj ~nk:csize.(k) d.(k).(a) d.(k).(b) dij
        in
        d.(k).(newc) <- v;
        d.(newc).(k) <- v
      end
    done;
    active.(a) <- false;
    active.(b) <- false;
    active.(newc) <- true;
    csize.(newc) <- ni + nj;
    d.(newc).(newc) <- 0.0;
    let height = if sq then sqrt (Float.max 0.0 dij) else dij in
    merges := { a; b; dist = height; size = ni + nj } :: !merges
  done;
  Difftrace_obs.Telemetry.Counter.add c_merges (max 0 (n - 1));
  { n; merges = Array.of_list (List.rev !merges) }

(* Flat cuts use a union-find over the merge prefix. *)
let assignments_of_prefix t nmerges =
  let parent = Array.init (t.n + nmerges) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  Array.iteri
    (fun step mg ->
      if step < nmerges then begin
        let c = t.n + step in
        parent.(find mg.a) <- c;
        parent.(find mg.b) <- c
      end)
    t.merges;
  (* normalize cluster ids by first appearance over leaves *)
  let ids = Hashtbl.create 16 in
  Array.init t.n (fun leaf ->
      let root = find leaf in
      match Hashtbl.find_opt ids root with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids root id;
        id)

let cut_k t k =
  if k < 1 || k > t.n then invalid_arg "Linkage.cut_k";
  assignments_of_prefix t (t.n - k)

let cut_height t h =
  let nmerges = ref 0 in
  Array.iter (fun mg -> if mg.dist <= h then incr nmerges) t.merges;
  (* merges are in nondecreasing height order for the monotone methods;
     for centroid/median count all merges below the threshold anyway *)
  assignments_of_prefix t !nmerges

let cophenetic t =
  let n = t.n in
  let coph = Array.make_matrix n n 0.0 in
  let members = Array.make (2 * n) [] in
  for i = 0 to n - 1 do
    members.(i) <- [ i ]
  done;
  Array.iteri
    (fun step mg ->
      let la = members.(mg.a) and lb = members.(mg.b) in
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              coph.(x).(y) <- mg.dist;
              coph.(y).(x) <- mg.dist)
            lb)
        la;
      members.(n + step) <- la @ lb)
    t.merges;
  coph
