(** MinHash signatures and LSH candidate bucketing for the JSM.

    A signature is [k] independent min-hashes of an object's attribute
    {e name} set. Because names (not context-local attribute ids) are
    hashed, a signature depends only on the object's attribute set —
    the same thing the analysis store's per-object digests certify —
    so signatures can be persisted and reused across contexts, runs and
    processes.

    For two objects with Jaccard similarity J, each signature row
    matches with probability exactly J, so the fraction of matching
    rows ({!estimate}) is an unbiased estimator with standard error
    [sqrt (J (1-J) / k)].

    The LSH index groups each signature's rows into [k/2] bands of 2
    rows and buckets signatures by band value: a pair becomes a
    {e candidate} iff at least one band matches, which happens with
    probability [1 - (1 - J^2)^(k/2)] — a sharp S-curve around
    {!threshold}. Candidacy is a pairwise predicate of the two
    signatures alone (never of the rest of the corpus), which is what
    makes sketch-mode matrix extension bit-identical to sketch-mode
    recomputation. *)

(** Number of min-hash rows used when [?k] is omitted: 64. *)
val default_k : int

(** Rows per LSH band (2). *)
val rows_per_band : int

(** [bands_for k] — number of LSH bands at signature length [k]. *)
val bands_for : int -> int

(** [threshold k] = [(1/bands)^(1/rows_per_band)] — the similarity at
    which a pair has ~50% candidacy probability (~0.18 at the default
    k; pairs above ~0.4 are candidates with near-certainty). *)
val threshold : int -> float

(** A signature: [k] row minima. An object with no attributes hashes
    to all-[max_int], so two empty objects estimate 1.0, matching
    [Context.jaccard] on two empty sets. *)
type signature = int array

(** [hasher ?k ctx] precomputes the per-attribute row hashes of [ctx]
    once and returns a function from object index to signature — use
    this to sketch only the objects a store lookup missed.
    Raises [Invalid_argument] if [k < 1]. *)
val hasher : ?k:int -> Difftrace_fca.Context.t -> int -> signature

(** [of_context ?k ctx] — every object's signature. *)
val of_context : ?k:int -> Difftrace_fca.Context.t -> signature array

(** [estimate a b] — fraction of matching rows, the MinHash estimate of
    the two objects' Jaccard similarity. Raises [Invalid_argument] on
    length mismatch. *)
val estimate : signature -> signature -> float

(** [candidates sigs] — the LSH adjacency: bit [j] of row [i] is set
    iff signatures [i] and [j] share at least one band. Symmetric,
    irreflexive, and a pure function of [sigs] (deterministic whatever
    engine later consumes it). Candidate pairs are counted by the
    [sketch.candidate_pairs] telemetry counter. *)
val candidates : signature array -> Difftrace_util.Bitset.t array
