open Difftrace_fca
module Bitset = Difftrace_util.Bitset
module Telemetry = Difftrace_obs.Telemetry

(* MinHash signatures computed from attribute sets, and the LSH banding
   index that turns them into a candidate-pair adjacency. Everything
   here is a pure function of the attribute *names* (never the
   context-local attribute ids), so an object's signature is stable
   across contexts and safe to persist next to its attribute digest. *)

let c_signatures = Telemetry.Counter.make "sketch.signatures"
let c_candidate_pairs = Telemetry.Counter.make "sketch.candidate_pairs"

let default_k = 64
let rows_per_band = 2

let bands_for k = max 1 (k / rows_per_band)

let threshold k =
  (1.0 /. float_of_int (bands_for k))
  ** (1.0 /. float_of_int rows_per_band)

type signature = int array

(* FNV-1a-style rolling hash of an attribute name, masked non-negative.
   Signatures are persisted, so this must stay deterministic across
   processes and OCaml versions: it uses only native int arithmetic
   (fixed 63-bit semantics on every 64-bit platform) and no
   [Hashtbl.hash]-style seeding. *)
let base_hash s =
  let h = ref 0x1000193 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001B3 land max_int)
    s;
  !h

(* splitmix-style remix of a base hash into the hash for MinHash row
   [row]: one multiplicative injection of the row index, then two
   xor-shift-multiply rounds. The multipliers fit OCaml's 62-bit
   positive literal range. *)
let row_hash base row =
  let z = (base lxor ((row + 1) * 0x2545F4914F6CDD1D)) land max_int in
  let z = (z lxor (z lsr 29)) * 0x369DEA0F31A53F85 land max_int in
  let z = (z lxor (z lsr 27)) * 0x27D4EB2F165667C5 land max_int in
  z lxor (z lsr 31)

let hasher ?(k = default_k) ctx =
  if k < 1 then invalid_arg "Sketch.hasher: k must be positive";
  let na = Context.n_attrs ctx in
  (* one flat row-hash table, attr-major: hs.(a*k + r) is attribute
     [a]'s hash under MinHash row [r] *)
  let hs = Array.make (max 1 (na * k)) 0 in
  for a = 0 to na - 1 do
    let b = base_hash (Context.attr_name ctx a) in
    for r = 0 to k - 1 do
      hs.((a * k) + r) <- row_hash b r
    done
  done;
  fun i ->
    let mins = Array.make k max_int in
    Bitset.iter
      (fun a ->
        let off = a * k in
        for r = 0 to k - 1 do
          let h = hs.(off + r) in
          if h < mins.(r) then mins.(r) <- h
        done)
      (Context.object_attrs ctx i);
    Telemetry.Counter.incr c_signatures;
    mins

let of_context ?k ctx =
  let h = hasher ?k ctx in
  Array.init (Context.n_objects ctx) h

let estimate a b =
  let k = Array.length a in
  if Array.length b <> k then
    invalid_arg "Sketch.estimate: signature length mismatch";
  if k = 0 then 1.0
  else begin
    let eq = ref 0 in
    for r = 0 to k - 1 do
      if a.(r) = b.(r) then incr eq
    done;
    float_of_int !eq /. float_of_int k
  end

let candidates sigs =
  let n = Array.length sigs in
  let adj = Array.init n (fun _ -> Bitset.create n) in
  if n > 1 then begin
    let k = Array.length sigs.(0) in
    Array.iteri
      (fun i s ->
        if Array.length s <> k then
          invalid_arg
            (Printf.sprintf
               "Sketch.candidates: signature %d has %d rows, expected %d" i
               (Array.length s) k))
      sigs;
    let b = bands_for k in
    (* one bucket table per band, keyed by the band's min values; two
       signatures land in the same bucket iff the band is equal, so the
       adjacency is exactly "shares >= 1 band" — a pairwise predicate,
       which is what keeps extend_sketch bit-identical to
       compute_sketch on the same signature set. *)
    let tbl = Hashtbl.create (2 * n) in
    for band = 0 to b - 1 do
      Hashtbl.reset tbl;
      let r0 = band * rows_per_band in
      let r1 = if r0 + 1 < k then r0 + 1 else r0 in
      for i = 0 to n - 1 do
        let key = (sigs.(i).(r0), sigs.(i).(r1)) in
        let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        List.iter
          (fun j ->
            if not (Bitset.mem adj.(i) j) then begin
              Telemetry.Counter.incr c_candidate_pairs;
              Bitset.add adj.(i) j;
              Bitset.add adj.(j) i
            end)
          prev;
        Hashtbl.replace tbl key (i :: prev)
      done
    done
  end;
  adj
