(** Jaccard Similarity Matrices (paper Fig. 4) and their diff JSM_D.

    JSM[i][j] is the Jaccard similarity of traces i and j's attribute
    sets; JSM_D = |JSM_faulty − JSM_normal| is the paper's "diff of
    diffs" that isolates what the fault changed. Matrices carry their
    trace labels so that two runs are aligned by label, not position.

    Matrices are symmetric and stored packed — the upper triangle
    only, n(n+1)/2 cells ({!Difftrace_util.Symmat}) — so structural
    equality on [t] is matrix equality and memory halves at fleet
    scale. Use {!get} for cells and {!rows} for a dense mirror. *)

type t = { labels : string array; m : Difftrace_util.Symmat.t }

(** [get t i j] — cell (i, j) (= (j, i)). *)
val get : t -> int -> int -> float

(** [rows t] — a fresh dense mirror of the matrix, for consumers that
    want plain [float array array] (clustering, heatmaps). *)
val rows : t -> float array array

(** [of_dense ~labels rows] packs a dense square matrix (the upper
    triangle is kept; a symmetric input round-trips through {!rows}
    exactly). Raises [Invalid_argument] when [rows] is ragged or its
    dimension disagrees with [labels] — the validation that used to
    live in [align] now happens at construction. *)
val of_dense : labels:string array -> float array array -> t

(** [compute ~init ctx] — pairwise Jaccard over the context's objects,
    with row construction delegated to [init] (same contract as
    [Array.init]; each row [i] is its n-i upper-triangle cells).
    Rows are independent, so passing a parallel initializer — e.g. the
    core library's [Engine.init engine] — computes the matrix on
    several domains; because each row lands in its own slot the result
    is identical whatever the schedule. [Context.jaccard] only reads
    the context, so rows may be built concurrently. Jaccard similarity
    is symmetric, so only the upper triangle is ever evaluated — half
    the work, and the packed storage keeps exactly those cells. *)
val compute :
  init:(int -> (int -> float array) -> float array array) ->
  Difftrace_fca.Context.t ->
  t

(** [of_context ctx] = [compute ~init:Array.init ctx]. *)
val of_context : Difftrace_fca.Context.t -> t

(** [extend ~init ~base ~fresh ctx] — incremental {!compute}: grow a
    previously computed matrix to a larger corpus, evaluating only the
    cells that involve at least one {e fresh} object. [fresh.(i)]
    declares whether ctx object [i] must be (re)evaluated; a non-fresh
    object's label must appear in [base], and the caller asserts its
    attribute set is unchanged since [base] was computed (the analysis
    store discharges this with per-object attribute digests). Cells
    between two non-fresh objects are mirrored from [base]; everything
    else is evaluated upper-triangle-first exactly like [compute], so
    the result is bit-for-bit identical to
    [compute ~init ctx] — adding k traces to an n-trace corpus costs
    k·(n+k) Jaccard evaluations instead of (n+k)². Rows are fanned
    over [init] just like [compute]; rows needing zero evaluations are
    counted by the [jsm.rows_reused] telemetry counter.
    Raises [Invalid_argument] when [fresh] has the wrong length, when a
    non-fresh label is missing from [base], or when [base]'s labels
    disagree with its dimension. *)
val extend :
  init:(int -> (int -> float array) -> float array array) ->
  base:t ->
  fresh:bool array ->
  Difftrace_fca.Context.t ->
  t

(** [compute_sketch ~init ~candidates ctx] — the sketch tier's
    {!compute}: exact Jaccard for every LSH candidate pair
    ([candidates] as produced by {!Sketch.candidates}), 0.0 for pruned
    pairs, 1.0 on the diagonal with no evaluation. On a corpus whose
    similar pairs are sparse this is near-linear: [jsm.jaccard_evals]
    counts only the candidate evaluations. The result is a pure
    function of [ctx] and [candidates] — deterministic across engines.
    Raises [Invalid_argument] when [candidates] has the wrong length. *)
val compute_sketch :
  init:(int -> (int -> float array) -> float array array) ->
  candidates:Difftrace_util.Bitset.t array ->
  Difftrace_fca.Context.t ->
  t

(** [extend_sketch ~init ~base ~fresh ~candidates ctx] — incremental
    {!compute_sketch}, bit-for-bit identical to it over the same
    signatures: candidacy is a pairwise predicate of two signatures,
    and a non-fresh object's signature is unchanged (same attribute
    set, vouched by its digest), so cells between two non-fresh
    objects — computed or pruned alike — mirror from [base] exactly.
    Raises like {!extend} plus {!compute_sketch}. *)
val extend_sketch :
  init:(int -> (int -> float array) -> float array array) ->
  base:t ->
  fresh:bool array ->
  candidates:Difftrace_util.Bitset.t array ->
  Difftrace_fca.Context.t ->
  t

(** [size t] is the number of traces. *)
val size : t -> int

(** [align a b] — both matrices restricted to their common labels, in
    [a]'s label order. Label resolution is hash-indexed, so alignment
    is O(n²) in trace count (the former per-lookup linear scan made it
    O(n³)). *)
val align : t -> t -> t * t

(** [diff a b] = |b − a| over the traces common to both (in [a]'s
    label order). Traces present in only one run are dropped; they are
    reported separately by the pipeline. *)
val diff : t -> t -> t

(** [row_change t i] = Σ_j t[i][j] — how much trace [i]'s similarity
    relation changed; the per-trace suspicion score. 0 on a 0-trace
    matrix (two runs sharing no labels diff to one). *)
val row_change : t -> int -> float

(** [to_distance t] — 1 − similarity, for clustering a plain JSM.
    A JSM_D is already a dissimilarity and is clustered as is. *)
val to_distance : t -> t

(** [heatmap t] — text rendering (Fig. 4); ["(no traces)\n"] for a
    0-trace matrix. *)
val heatmap : t -> string
