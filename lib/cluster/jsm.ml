open Difftrace_fca
module Telemetry = Difftrace_obs.Telemetry

(* one count per similarity cell; bumped once per row so the counter
   stays off the innermost loop. The row function may run on any
   engine domain — the atomic add keeps the total deterministic. *)
let c_cells = Telemetry.Counter.make "jsm.cells"

type t = { labels : string array; m : float array array }

let compute ~init ctx =
  let n = Context.n_objects ctx in
  let labels = Array.init n (Context.object_label ctx) in
  let m =
    init n (fun i ->
        let row = Array.init n (fun j -> Context.jaccard ctx i j) in
        Telemetry.Counter.add c_cells n;
        row)
  in
  { labels; m }

let of_context ctx = compute ~init:Array.init ctx

let size t = Array.length t.labels

let index_of labels l =
  let found = ref (-1) in
  Array.iteri (fun i x -> if x = l && !found < 0 then found := i) labels;
  !found

let align a b =
  let common =
    Array.to_list a.labels |> List.filter (fun l -> index_of b.labels l >= 0)
  in
  let labels = Array.of_list common in
  let n = Array.length labels in
  let ai = Array.map (fun l -> index_of a.labels l) labels in
  let bi = Array.map (fun l -> index_of b.labels l) labels in
  let pick src idx =
    Array.init n (fun i -> Array.init n (fun j -> src.(idx.(i)).(idx.(j))))
  in
  ({ labels; m = pick a.m ai }, { labels; m = pick b.m bi })

let diff a b =
  let a', b' = align a b in
  let n = Array.length a'.labels in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j -> Float.abs (b'.m.(i).(j) -. a'.m.(i).(j))))
  in
  { labels = a'.labels; m }

let row_change t i = Array.fold_left ( +. ) 0.0 t.m.(i)

let to_distance t =
  { t with m = Array.map (Array.map (fun s -> 1.0 -. s)) t.m }

let heatmap t = Difftrace_util.Texttable.heatmap ~labels:t.labels t.m
