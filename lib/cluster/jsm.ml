open Difftrace_fca
module Telemetry = Difftrace_obs.Telemetry
module Symmat = Difftrace_util.Symmat
module Bitset = Difftrace_util.Bitset

(* one count per similarity cell; bumped once per row so the counter
   stays off the innermost loop. The row function may run on any
   engine domain — the atomic add keeps the total deterministic.
   [jsm.cells] counts matrix cells filled (n², stable across commits);
   [jsm.jaccard_evals] counts actual Jaccard evaluations: n(n+1)/2 for
   an exact matrix (symmetry halves the work), and only the LSH
   candidate pairs for a sketch matrix. *)
let c_cells = Telemetry.Counter.make "jsm.cells"
let c_evals = Telemetry.Counter.make "jsm.jaccard_evals"

(* rows of [extend] whose every upper-triangle cell was mirrored from
   the cached base matrix — zero Jaccard evaluations *)
let c_rows_reused = Telemetry.Counter.make "jsm.rows_reused"

(* The matrix is symmetric, so only the packed upper triangle is
   stored — n(n+1)/2 cells instead of the former dense n² mirror —
   and structural equality on [t] is matrix equality. *)
type t = { labels : string array; m : Symmat.t }

let get t i j = Symmat.get t.m i j
let rows t = Symmat.to_rows t.m

let of_dense ~labels rows =
  let n = Array.length labels in
  if Array.length rows <> n then
    invalid_arg
      (Printf.sprintf "Jsm.of_dense: %d labels but %d rows" n
         (Array.length rows));
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg
          (Printf.sprintf
             "Jsm.of_dense: row %d (label %S) has %d columns, expected %d" i
             labels.(i) (Array.length row) n))
    rows;
  { labels; m = Symmat.init n (fun i j -> rows.(i).(j)) }

let compute ~init ctx =
  let n = Context.n_objects ctx in
  let labels = Array.init n (Context.object_label ctx) in
  (* Jaccard is symmetric, so each row evaluates only its upper
     triangle (j >= i) — a ragged row of n-i cells that packs straight
     into the Symmat. Rows stay independent, so any
     [Array.init]-contract engine initializer schedules them freely. *)
  let m =
    init n (fun i ->
        let row =
          Array.init (n - i) (fun d -> Context.jaccard ctx i (i + d))
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals (n - i);
        row)
  in
  { labels; m = Symmat.of_upper_rows ~n m }

let of_context ctx = compute ~init:Array.init ctx

let size t = Array.length t.labels

(* label -> first index, replacing the former linear scan per lookup
   that made [align] O(n³) in trace count *)
let index_table labels =
  let tbl = Hashtbl.create (2 * Array.length labels) in
  Array.iteri (fun i l -> if not (Hashtbl.mem tbl l) then Hashtbl.add tbl l i) labels;
  tbl

(* The packed representation makes ragged rows unrepresentable (they
   used to reach [align] from partially-failed campaign cells via
   hand-assembled dense matrices — that hole is now closed at
   construction time by [of_dense]); what can still go wrong is a
   label array whose length disagrees with the matrix dimension. *)
let check_shape side t =
  let n = Array.length t.labels in
  if Symmat.dim t.m <> n then
    invalid_arg
      (Printf.sprintf "Jsm.align: %s matrix has %d labels but %d rows" side n
         (Symmat.dim t.m))

(* ctx index -> base index for [extend]: -1 marks objects that must be
   evaluated, everything else must resolve into [base]. *)
let base_map ~op ~base ~fresh ctx =
  let n = Context.n_objects ctx in
  if Array.length fresh <> n then
    invalid_arg
      (Printf.sprintf "Jsm.%s: %d fresh flags for %d objects" op
         (Array.length fresh) n);
  check_shape "base" base;
  let labels = Array.init n (Context.object_label ctx) in
  let base_index = index_table base.labels in
  let bmap =
    Array.mapi
      (fun i l ->
        if fresh.(i) then -1
        else
          match Hashtbl.find_opt base_index l with
          | Some bi -> bi
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Jsm.%s: label %S is not fresh but missing from the base \
                  matrix"
                 op l))
      labels
  in
  (labels, bmap)

(* Incrementally extend a cached matrix to a grown corpus. The
   contract with [compute] is bit-for-bit equality: every cell whose
   two objects are vouched for by the caller ([fresh.(i) = false]) is
   mirrored from [base], every other upper-triangle cell is evaluated.
   Mirroring is sound because a Jaccard value depends only on the two
   objects' attribute sets: when those are unchanged (the caller's
   burden, discharged by the analysis store's per-object attribute
   digests), the cached float is the very value [Context.jaccard]
   would recompute. *)
let extend ~init ~base ~fresh ctx =
  let n = Context.n_objects ctx in
  let labels, bmap = base_map ~op:"extend" ~base ~fresh ctx in
  let m =
    init n (fun i ->
        let evals = ref 0 in
        let bi = bmap.(i) in
        let row =
          Array.init (n - i) (fun d ->
              let j = i + d in
              let bj = bmap.(j) in
              if bi >= 0 && bj >= 0 then Symmat.get base.m bi bj
              else begin
                incr evals;
                Context.jaccard ctx i j
              end)
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals !evals;
        if !evals = 0 then Telemetry.Counter.incr c_rows_reused;
        row)
  in
  { labels; m = Symmat.of_upper_rows ~n m }

let check_candidates op candidates n =
  if Array.length candidates <> n then
    invalid_arg
      (Printf.sprintf "Jsm.%s: %d candidate rows for %d objects" op
         (Array.length candidates) n)

(* Sketch-mode [compute]: exact Jaccard inside LSH candidate pairs,
   0.0 everywhere else, 1.0 on the diagonal without an evaluation.
   The matrix is a pure function of the context and the adjacency, so
   it is deterministic across engines, and [jsm.jaccard_evals] counts
   only the candidate evaluations — the number the sketch bench and
   the CI sketch-smoke assert on. *)
let compute_sketch ~init ~candidates ctx =
  let n = Context.n_objects ctx in
  check_candidates "compute_sketch" candidates n;
  let labels = Array.init n (Context.object_label ctx) in
  let m =
    init n (fun i ->
        let evals = ref 0 in
        let cand = candidates.(i) in
        let row =
          Array.init (n - i) (fun d ->
              if d = 0 then 1.0
              else
                let j = i + d in
                if Bitset.mem cand j then begin
                  incr evals;
                  Context.jaccard ctx i j
                end
                else 0.0)
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals !evals;
        row)
  in
  { labels; m = Symmat.of_upper_rows ~n m }

(* Sketch-mode [extend]. Bit-identical to [compute_sketch] over the
   same signatures because candidacy is pairwise: whether (i, j) is a
   candidate depends only on the two signatures, and a non-fresh
   object's signature is unchanged (same attribute set, vouched by its
   digest), so a mirrored base cell — candidate or pruned — is exactly
   what recomputation would produce. *)
let extend_sketch ~init ~base ~fresh ~candidates ctx =
  let n = Context.n_objects ctx in
  check_candidates "extend_sketch" candidates n;
  let labels, bmap = base_map ~op:"extend_sketch" ~base ~fresh ctx in
  let m =
    init n (fun i ->
        let evals = ref 0 in
        let bi = bmap.(i) in
        let cand = candidates.(i) in
        let row =
          Array.init (n - i) (fun d ->
              if d = 0 then 1.0
              else
                let j = i + d in
                let bj = bmap.(j) in
                if bi >= 0 && bj >= 0 then Symmat.get base.m bi bj
                else if Bitset.mem cand j then begin
                  incr evals;
                  Context.jaccard ctx i j
                end
                else 0.0)
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals !evals;
        if !evals = 0 then Telemetry.Counter.incr c_rows_reused;
        row)
  in
  { labels; m = Symmat.of_upper_rows ~n m }

let align a b =
  check_shape "first" a;
  check_shape "second" b;
  let a_index = index_table a.labels and b_index = index_table b.labels in
  let resolve side tbl l =
    match Hashtbl.find_opt tbl l with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Jsm.align: label %S missing from the %s matrix" l side)
  in
  let common =
    Array.to_list a.labels |> List.filter (fun l -> Hashtbl.mem b_index l)
  in
  let labels = Array.of_list common in
  let n = Array.length labels in
  let ai = Array.map (fun l -> resolve "first" a_index l) labels in
  let bi = Array.map (fun l -> resolve "second" b_index l) labels in
  let pick src idx =
    Symmat.init n (fun i j -> Symmat.get src idx.(i) idx.(j))
  in
  ({ labels; m = pick a.m ai }, { labels; m = pick b.m bi })

let diff a b =
  let a', b' = align a b in
  { labels = a'.labels;
    m = Symmat.map2 (fun x y -> Float.abs (y -. x)) a'.m b'.m }

(* an aligned diff of two runs sharing no labels is a legal 0-trace
   matrix; scoring and rendering it must degrade, not raise *)
let row_change t i = if Symmat.dim t.m = 0 then 0.0 else Symmat.row_sum t.m i

let to_distance t = { t with m = Symmat.map (fun s -> 1.0 -. s) t.m }

let heatmap t =
  if Array.length t.labels = 0 then "(no traces)\n"
  else Difftrace_util.Texttable.heatmap ~labels:t.labels (rows t)
