open Difftrace_fca
module Telemetry = Difftrace_obs.Telemetry

(* one count per similarity cell; bumped once per row so the counter
   stays off the innermost loop. The row function may run on any
   engine domain — the atomic add keeps the total deterministic.
   [jsm.cells] counts matrix cells filled (n², stable across commits);
   [jsm.jaccard_evals] counts actual Jaccard evaluations, which the
   symmetry optimization below halves to n(n+1)/2. *)
let c_cells = Telemetry.Counter.make "jsm.cells"
let c_evals = Telemetry.Counter.make "jsm.jaccard_evals"

(* rows of [extend] whose every upper-triangle cell was mirrored from
   the cached base matrix — zero Jaccard evaluations *)
let c_rows_reused = Telemetry.Counter.make "jsm.rows_reused"

type t = { labels : string array; m : float array array }

let compute ~init ctx =
  let n = Context.n_objects ctx in
  let labels = Array.init n (Context.object_label ctx) in
  (* Jaccard is symmetric, so each row evaluates only its upper
     triangle (j >= i); the strict lower triangle is mirrored from the
     transposed cell afterwards. Rows stay independent, so any
     [Array.init]-contract engine initializer schedules them freely. *)
  let m =
    init n (fun i ->
        let row =
          Array.init n (fun j -> if j < i then 0.0 else Context.jaccard ctx i j)
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals (n - i);
        row)
  in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      m.(i).(j) <- m.(j).(i)
    done
  done;
  { labels; m }

let of_context ctx = compute ~init:Array.init ctx

let size t = Array.length t.labels

(* label -> first index, replacing the former linear scan per lookup
   that made [align] O(n³) in trace count *)
let index_table labels =
  let tbl = Hashtbl.create (2 * Array.length labels) in
  Array.iteri (fun i l -> if not (Hashtbl.mem tbl l) then Hashtbl.add tbl l i) labels;
  tbl

(* A partially-failed campaign cell hands [align] matrices whose label
   sets differ and whose rows may be ragged (a row dropped mid-write).
   Both used to escape as an uncaught [Not_found] (from a raw
   [Hashtbl.find]) or a bare out-of-bounds — diagnose them instead:
   shape problems raise a descriptive [Invalid_argument] up front, and
   any label that fails to resolve is named in the error. *)
let check_shape side t =
  let n = Array.length t.labels in
  if Array.length t.m <> n then
    invalid_arg
      (Printf.sprintf "Jsm.align: %s matrix has %d labels but %d rows" side n
         (Array.length t.m));
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg
          (Printf.sprintf
             "Jsm.align: %s matrix row %d (label %S) has %d columns, expected %d"
             side i t.labels.(i) (Array.length row) n))
    t.m

(* Incrementally extend a cached matrix to a grown corpus. The
   contract with [compute] is bit-for-bit equality: every cell whose
   two objects are vouched for by the caller ([fresh.(i) = false]) is
   mirrored from [base], every other upper-triangle cell is evaluated,
   and the strict lower triangle is mirrored from the transposed cell
   exactly as [compute] does. Mirroring is sound because a Jaccard
   value depends only on the two objects' attribute sets: when those
   are unchanged (the caller's burden, discharged by the analysis
   store's per-object attribute digests), the cached float is the very
   value [Context.jaccard] would recompute. *)
let extend ~init ~base ~fresh ctx =
  let n = Context.n_objects ctx in
  if Array.length fresh <> n then
    invalid_arg
      (Printf.sprintf "Jsm.extend: %d fresh flags for %d objects"
         (Array.length fresh) n);
  check_shape "base" base;
  let labels = Array.init n (Context.object_label ctx) in
  let base_index = index_table base.labels in
  (* ctx index -> base index, -1 for objects that must be evaluated *)
  let bmap =
    Array.mapi
      (fun i l ->
        if fresh.(i) then -1
        else
          match Hashtbl.find_opt base_index l with
          | Some bi -> bi
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Jsm.extend: label %S is not fresh but missing from the base \
                  matrix"
                 l))
      labels
  in
  let m =
    init n (fun i ->
        let evals = ref 0 in
        let bi = bmap.(i) in
        let row =
          Array.init n (fun j ->
              if j < i then 0.0
              else
                let bj = bmap.(j) in
                if bi >= 0 && bj >= 0 then base.m.(bi).(bj)
                else begin
                  incr evals;
                  Context.jaccard ctx i j
                end)
        in
        Telemetry.Counter.add c_cells n;
        Telemetry.Counter.add c_evals !evals;
        if !evals = 0 then Telemetry.Counter.incr c_rows_reused;
        row)
  in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      m.(i).(j) <- m.(j).(i)
    done
  done;
  { labels; m }

let align a b =
  check_shape "first" a;
  check_shape "second" b;
  let a_index = index_table a.labels and b_index = index_table b.labels in
  let resolve side tbl l =
    match Hashtbl.find_opt tbl l with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Jsm.align: label %S missing from the %s matrix" l side)
  in
  let common =
    Array.to_list a.labels |> List.filter (fun l -> Hashtbl.mem b_index l)
  in
  let labels = Array.of_list common in
  let n = Array.length labels in
  let ai = Array.map (fun l -> resolve "first" a_index l) labels in
  let bi = Array.map (fun l -> resolve "second" b_index l) labels in
  let pick src idx =
    Array.init n (fun i -> Array.init n (fun j -> src.(idx.(i)).(idx.(j))))
  in
  ({ labels; m = pick a.m ai }, { labels; m = pick b.m bi })

let diff a b =
  let a', b' = align a b in
  let n = Array.length a'.labels in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j -> Float.abs (b'.m.(i).(j) -. a'.m.(i).(j))))
  in
  { labels = a'.labels; m }

(* an aligned diff of two runs sharing no labels is a legal 0-trace
   matrix; scoring and rendering it must degrade, not raise *)
let row_change t i =
  if Array.length t.m = 0 then 0.0 else Array.fold_left ( +. ) 0.0 t.m.(i)

let to_distance t =
  { t with m = Array.map (Array.map (fun s -> 1.0 -. s)) t.m }

let heatmap t =
  if Array.length t.labels = 0 then "(no traces)\n"
  else Difftrace_util.Texttable.heatmap ~labels:t.labels t.m
