module R = Difftrace_simulator.Runtime
module Diffnlr = Difftrace_diff.Diffnlr
module Phasediff = Difftrace_diff.Phasediff
module Cct = Difftrace_stacktree.Cct
module Stacktree = Difftrace_stacktree.Stacktree

type t = {
  markdown : string;
  best_config : Config.t;
  top_suspect : string option;
}

let generate ?(engine = Engine.Sequential) ~fault_label ~(normal : R.outcome)
    ~(faulty : R.outcome) () =
  let buf = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "# DiffTrace report\n\n";
  pf "- fault: `%s`\n" fault_label;
  pf "- faulty run: %s\n"
    (if faulty.R.deadlocked <> [] then
       Printf.sprintf "HUNG (%d threads truncated)" (List.length faulty.R.deadlocked)
     else "completed");
  (match faulty.R.collective_mismatch with
  | Some m -> pf "- collective diagnostic: %s\n" m
  | None -> ());
  List.iter
    (fun r ->
      pf "- locking-discipline violation: process %d, cell `%s`, thread %s\n"
        r.R.race_pid r.R.cell_name
        (String.concat "," (List.map string_of_int r.R.tids)))
    faulty.R.races;
  let search =
    match
      Autotune.search ~engine ~normal:normal.R.traces ~faulty:faulty.R.traces ()
    with
    | Ok r -> r
    | Error e ->
      (* unreachable: the default axes are non-empty *)
      invalid_arg (Session.error_to_string e)
  in
  let best = search.Autotune.best.Autotune.config in
  pf "\n## Configuration search (%d evaluated)\n\n```\n%s```\n"
    search.Autotune.evaluated (Autotune.render search);
  (* the final comparison runs against fresh tables (no memo) so the
     rendered diffNLR gets pristine L-ids *)
  let c = Pipeline.compare_runs best ~normal:normal.R.traces ~faulty:faulty.R.traces in
  pf "\n## Comparison under `%s`\n\n" (Config.name best);
  pf "B-score: %.3f\n\nSuspicious traces:\n\n```\n" c.Pipeline.bscore;
  Array.iteri
    (fun i (l, s) -> if i < 8 && s > 1e-9 then pf "%-6s %.3f\n" l s)
    c.Pipeline.suspects;
  pf "```\n";
  let top_suspect =
    match search.Autotune.best.Autotune.top_suspect with
    | Some s -> Some s
    | None ->
      if Array.length c.Pipeline.suspects > 0 && snd c.Pipeline.suspects.(0) > 1e-9
      then Some (fst c.Pipeline.suspects.(0))
      else None
  in
  (match top_suspect with
  | Some suspect ->
    (match Pipeline.find_diffnlr c suspect with
    | Ok d -> pf "\n## diffNLR(%s)\n\n```\n%s```\n" suspect (Diffnlr.render d)
    | Error e ->
      pf "\n## diffNLR(%s)\n\n%s\n" suspect (Pipeline.lookup_error_to_string e));
    (match Pipeline.find_phasediff c suspect with
    | Ok { Phasediff.first_divergent = Some i; total_phases; _ } ->
      pf "\n## Phase analysis\n\nfirst divergent phase: %d of %d\n" i total_phases
    | Ok _ | Error _ ->
      pf "\n## Phase analysis\n\nno phase-level divergence for %s\n" suspect)
  | None ->
    pf "\n## diffNLR\n\nno suspicious trace (the runs are indistinguishable)\n";
    pf "\n## Phase analysis\n\nnot applicable\n");
  let deltas =
    Cct.diff ~normal:(Cct.coalesce normal.R.traces)
      ~faulty:(Cct.coalesce faulty.R.traces)
  in
  pf "\n## Calling-context deltas (top 8)\n\n```\n%s```\n"
    (Cct.render_diff (List.filteri (fun i _ -> i < 8) deltas));
  pf "\n## Where the faulty run stopped (stack tree)\n\n```\n%s```\n"
    (Stacktree.render (Stacktree.build faulty.R.traces));
  if faulty.R.deadlocked <> [] then begin
    (* PRODOMETER-style progress: only meaningful when something hung *)
    let entries = Difftrace_temporal.Progress.least_progressed faulty in
    pf "\n## Least-progressed threads (logical clocks)\n\n```\n%s```\n"
      (Difftrace_temporal.Progress.render (List.filteri (fun i _ -> i < 8) entries))
  end;
  { markdown = Buffer.contents buf; best_config = best; top_suspect }
