module Filter = Difftrace_filter.Filter
module Attributes = Difftrace_fca.Attributes

type row = {
  config : Config.t;
  bscore : float;
  top_processes : int list;
  top_threads : string list;
}

let grid ~filters ?attrs ?(k = 10) ?linkage ?engine () =
  let attrs = match attrs with Some a -> a | None -> Attributes.all in
  let base =
    Config.default
    |> Config.with_k k
    |> (match linkage with None -> Fun.id | Some l -> Config.with_linkage l)
    |> match engine with None -> Fun.id | Some e -> Config.with_engine e
  in
  List.concat_map
    (fun f ->
      List.map
        (fun a -> base |> Config.with_filter f |> Config.with_attrs a)
        attrs)
    filters

let sweep ?memo ?store configs ~normal ~faulty =
  Difftrace_obs.Telemetry.Span.with_ "ranking.sweep" @@ fun () ->
  let rows =
    List.map
      (fun config ->
        let c = Pipeline.compare_runs ?memo ?store config ~normal ~faulty in
        { config;
          bscore = c.Pipeline.bscore;
          top_processes = Pipeline.top_processes c;
          top_threads = Pipeline.top_threads c })
      configs
  in
  List.stable_sort (fun a b -> Float.compare a.bscore b.bscore) rows

let render ?max_rows rows =
  let rows =
    match max_rows with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  let cells =
    List.map
      (fun r ->
        [ Config.filter_name r.config;
          Config.attrs_name r.config;
          Printf.sprintf "%.3f" r.bscore;
          String.concat ", " (List.map string_of_int r.top_processes);
          String.concat ", " r.top_threads ])
      rows
  in
  Difftrace_util.Texttable.render
    ~headers:[ "Filter"; "Attributes"; "B-score"; "Top Processes"; "Top Threads" ]
    cells
