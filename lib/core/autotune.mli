(** Automated parameter refinement (paper Fig. 1's iterative loop and
    §II-F: the user "can alter the linkage method, the FCA attributes,
    adjust the NLR constants and/or the front-end filters" when one
    pass fails to localize a bug — inspired by the systematic search of
    Zeller's delta debugging, which the paper cites as an influence).

    [search] explores the configuration grid and ranks configurations
    by how sharply they separate the faulty run from the normal one:
    primarily by ascending B-score (most restructured clustering),
    breaking ties by descending {e suspect concentration} (the top
    suspect's share of the total JSM_D row change — a configuration
    that points at one thread beats one that points everywhere).

    The whole sweep shares one {!Memo.t}, so every grid point that
    re-filters to the same call sequences with the same NLR constants
    reuses the cached summaries instead of recomputing them; [cache]
    reports how much was saved. *)

type candidate = {
  config : Config.t;
  bscore : float;
  concentration : float;  (** ∈ [0, 1]; 0 when nothing changed *)
  top_suspect : string option;
}

type result = {
  best : candidate;        (** also first in [ranked] *)
  ranked : candidate list;
  evaluated : int;
  cache : Memo.stats;      (** summary-cache hits/misses of this sweep *)
}

(** [evaluate ?memo ?store config ~normal ~faulty] — score one
    configuration (a single {!Pipeline.compare_runs}), probing and
    filling [memo] or [store] when given. *)
val evaluate :
  ?memo:Memo.t ->
  ?store:Store.t ->
  Config.t ->
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  candidate

(** [search ?engine ?memo ?filters ?attrs ?ks ?linkages ~normal ~faulty
    ()] — exhaustive deterministic sweep of the cross product.
    Defaults: sequential engine, a fresh memo, MPI-all + everything
    filters; all six Table V attribute specs; K ∈ {10}; ward linkage.
    Pass [memo] to keep the cache warm across multiple searches, or
    [store] (not both — [Invalid_argument], an API-misuse bug) to warm
    the sweep from disk and persist its summaries/matrices; [cache]
    then reports the disk-backed reuse too. An {e empty axis} — an
    empty [filters], [attrs], [ks] or [linkages] list, however it
    reached us — is request data, not a bug, so it returns
    [Error (Session.Invalid _)] naming the empty axes instead of
    raising: a daemon sweeping a caller-supplied grid must be able to
    report it and live. *)
val search :
  ?engine:Engine.t ->
  ?memo:Memo.t ->
  ?store:Store.t ->
  ?filters:Difftrace_filter.Filter.t list ->
  ?attrs:Difftrace_fca.Attributes.spec list ->
  ?ks:int list ->
  ?linkages:Difftrace_cluster.Linkage.method_ list ->
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  unit ->
  (result, Session.error) Stdlib.result

(** [render result] — a report table of the ranked candidates. *)
val render : result -> string
