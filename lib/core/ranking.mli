(** Ranking tables (paper Tables VI–IX).

    Sweeps a grid of configurations over a (normal, faulty) run pair;
    each row reports the configuration, the B-score of the two
    clusterings, and the top suspicious processes / threads. Rows are
    sorted by ascending B-score — the configurations under which the
    fault restructured the execution most float to the top, which is
    how the paper's tables are ordered. *)

type row = {
  config : Config.t;
  bscore : float;
  top_processes : int list;
  top_threads : string list;
}

(** [grid ~filters ?attrs ?k ?linkage ?engine ()] — the cross product
    of [filters] × [attrs] (default: all six Table V specs), every
    configuration carrying the given engine. *)
val grid :
  filters:Difftrace_filter.Filter.t list ->
  ?attrs:Difftrace_fca.Attributes.spec list ->
  ?k:int ->
  ?linkage:Difftrace_cluster.Linkage.method_ ->
  ?engine:Engine.t ->
  unit ->
  Config.t list

(** [sweep ?memo ?store configs ~normal ~faulty] — one row per
    configuration, sorted by ascending B-score (ties keep grid order).
    Pass [memo] to share NLR summaries across the sweep, or [store] to
    additionally reuse disk-cached summaries and JSMs (results are
    unchanged either way; not both — [Invalid_argument]). *)
val sweep :
  ?memo:Memo.t ->
  ?store:Store.t ->
  Config.t list ->
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  row list

(** [render ?max_rows rows] — the paper-style four-column table. *)
val render : ?max_rows:int -> row list -> string
