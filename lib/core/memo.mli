(** Content-addressed memoization of NLR trace summaries.

    {!Autotune}'s grid sweep and repeated {!Pipeline.compare_runs}
    calls re-summarize identical filtered traces for every grid point:
    two configurations that differ only in FCA attributes or linkage
    produce the exact same per-trace summaries. A memo carries the
    execution-wide shared tables (symbol table + loop table) together
    with a cache keyed by the digest of (filtered call-ID sequence, K,
    repeats), so a summary is computed once per distinct input and
    reused across the whole sweep.

    Cached summaries are only meaningful against the memo's own shared
    tables, which is why the memo {e owns} them: pass the same memo to
    every [analyze]/[compare_runs] call that should share work, and the
    pipeline will use [Memo.symtab]/[Memo.loop_table] as its shared
    tables. Reusing a memo never changes analysis results (B-scores,
    suspect rankings, JSMs); it can only renumber the cosmetic [L]-ids
    of loop bodies interleaved by earlier cached runs, because the
    shared loop table accumulates bodies across all analyses.

    Hit/miss counters are exposed for the bench harness. The structure
    is not thread-safe; the pipeline probes and fills it only from its
    sequential stages. *)

type t

type stats = { hits : int; misses : int }

type key

val create : unit -> t

(** The memo's shared symbol table, used by every analysis that passes
    this memo. *)
val symtab : t -> Difftrace_trace.Symtab.t

(** The memo's shared loop table; cached summaries index into it. *)
val loop_table : t -> Difftrace_nlr.Nlr.Loop_table.t

(** [key ~ids ~k ~repeats] — digest of a filtered, symtab-remapped
    call-ID sequence and the NLR constants. *)
val key : ids:int array -> k:int -> repeats:int -> key

(** [find t key] — the cached summary, counting a hit or a miss. *)
val find : t -> key -> Difftrace_nlr.Nlr.t option

(** [add t key nlr] — record a summary (expressed in the memo's shared
    loop table). *)
val add : t -> key -> Difftrace_nlr.Nlr.t -> unit

(** {2 Persistence hooks}

    {!Store} persists a memo across processes. Entries cross that
    boundary by their raw key bytes (the 16-byte digest); a restored
    entry must be expressed against the memo's shared tables, which the
    store guarantees by persisting and replaying the tables' intern
    sequences in creation order. *)

(** [restore t ~key nlr] — adopt a persisted entry ([key] is the raw
    digest bytes) without touching the hit/miss counters. *)
val restore : t -> key:string -> Difftrace_nlr.Nlr.t -> unit

(** [mem t ~key] — is the raw key cached? (No hit/miss accounting.) *)
val mem : t -> key:string -> bool

(** [fold t ~init ~f] — fold over every cached entry; [f] receives the
    raw key bytes. Iteration order is unspecified. *)
val fold : t -> init:'a -> f:(string -> Difftrace_nlr.Nlr.t -> 'a -> 'a) -> 'a

(** [length t] — number of cached summaries. *)
val length : t -> int

(** Cumulative counters since [create]. *)
val stats : t -> stats

(** [hit_rate s] ∈ [0, 1]; 0 when no lookups happened. *)
val hit_rate : stats -> float
