module Nlr = Difftrace_nlr.Nlr
module Context = Difftrace_fca.Context
module Jsm = Difftrace_cluster.Jsm
module Sketch = Difftrace_cluster.Sketch
module Telemetry = Difftrace_obs.Telemetry
module Crc32 = Difftrace_util.Crc32
module Symmat = Difftrace_util.Symmat
module Varint = Difftrace_util.Varint

let c_hits = Telemetry.Counter.make "store.hits"
let c_misses = Telemetry.Counter.make "store.misses"
let c_evictions = Telemetry.Counter.make "store.evictions"
let c_crc_fail = Telemetry.Counter.make "store.crc_fail"

(* per-object MinHash signature lookups; these move only in sketch
   mode, so a warm exact run's counter table is unchanged *)
let c_sig_hits = Telemetry.Counter.make "store.sig_hits"
let c_sig_misses = Telemetry.Counter.make "store.sig_misses"

(* merged variational alignments served warm (vdiff skips re-alignment) *)
let c_vdiff_hits = Telemetry.Counter.make "store.vdiff_hits"
let c_vdiff_misses = Telemetry.Counter.make "store.vdiff_misses"

(* retention caps applied by [flush]; [gc] takes explicit ones *)
let default_keep_summaries = 4096
let default_keep_matrices = 64
let default_keep_signatures = 4096
let default_keep_vdiffs = 64

let magic = "difftrace-store 1\n"
let store_file = "analysis.store"

type error = { path : string; reason : string }

let error_to_string e = Printf.sprintf "%s: %s" e.path e.reason

(* a persisted JSM: labels with one attribute-set digest per object,
   plus the full (symmetric) matrix. [ns] partitions by Config.digest;
   [stamp] orders entries for eviction; [identity] content-addresses
   the (ns, label/digest multiset) so re-recording replaces. *)
type matrix_entry = {
  ns : string;
  stamp : int;
  labels : string array;
  digests : string array;
  matrix : Symmat.t;
}

(* a persisted MinHash signature, keyed by the attribute-set digest of
   the object it sketches — the same digest that gates matrix-row
   reuse, so a signature hit carries the same vouching: same digest,
   same attribute-name set, same signature bit for bit. *)
type sig_entry = { sg_stamp : int; sg_mins : int array }

(* a persisted variational alignment: the merged column sequence of an
   n-way vdiff, keyed by a digest over the aligned runs' element
   sequences (in run order) — same runs, same columns, so a hit skips
   the whole progressive re-alignment *)
type vdiff_entry = {
  vd_stamp : int;
  vd_nruns : int;
  vd_cols : (string * int list) array;  (* (text, presence indices) *)
}

type t = {
  dir : string;
  file : string;
  memo : Memo.t;
  stamps : (string, int) Hashtbl.t;  (* summary key -> stamp *)
  evicted : (string, unit) Hashtbl.t;  (* summary keys gc'd, skip at flush *)
  matrices : (string, matrix_entry) Hashtbl.t;  (* identity -> entry *)
  signatures : (string, sig_entry) Hashtbl.t;  (* object digest -> entry *)
  vdiffs : (string, vdiff_entry) Hashtbl.t;  (* run-set digest -> entry *)
  mutable next_stamp : int;
  mutable dirty : bool;
  mutable salvaged : bool;
}

let dir t = t.dir
let memo t = t.memo

let matrix_identity (e : matrix_entry) =
  let pairs =
    Array.to_list (Array.map2 (fun l d -> l ^ "\x00" ^ d) e.labels e.digests)
    |> List.sort String.compare
  in
  Digest.string (String.concat "\x01" (e.ns :: pairs))

(* digest of one object's attribute-name set. Names are sorted —
   bitset iteration order follows the context's first-seen attribute
   interning, which varies with corpus composition, while the set
   itself (what Jaccard depends on) does not. *)
let object_digest ctx i =
  let names = ref [] in
  Difftrace_util.Bitset.iter
    (fun j -> names := Context.attr_name ctx j :: !names)
    (Context.object_attrs ctx i);
  let buf = Buffer.create 256 in
  List.iter
    (fun n ->
      Buffer.add_string buf n;
      Buffer.add_char buf '\x00')
    (List.sort String.compare !names);
  Digest.string (Buffer.contents buf)

(* {2 Record encoding}

   File = magic line, then records: varint payload length, payload,
   CRC-32 of the payload (4 LE bytes). Payload byte 0 is the type.
   Write order is symbols, loop bodies, summaries, signatures,
   matrices, vdiffs, so every reference points backwards and a
   salvaged prefix is self-consistent. Signature and vdiff records are
   standalone (they reference nothing), and a store that never served
   a sketch run or a vdiff holds none, so the historical byte layout
   is unchanged. *)

let tag_symbol = 1
let tag_body = 2
let tag_summary = 3
let tag_matrix = 4
let tag_signature = 5
let tag_vdiff = 6

let write_elem buf = function
  | Nlr.Sym id ->
    Varint.write buf 0;
    Varint.write buf id
  | Nlr.Loop { body; count } ->
    Varint.write buf 1;
    Varint.write buf body;
    Varint.write buf count

let write_elems buf elems =
  Varint.write buf (Array.length elems);
  Array.iter (write_elem buf) elems

let add_record buf payload =
  Varint.write buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.add_string buf (Crc32.to_le_bytes (Crc32.string payload))

let payload_symbol name =
  let b = Buffer.create (1 + String.length name) in
  Buffer.add_char b (Char.chr tag_symbol);
  Buffer.add_string b name;
  Buffer.contents b

let payload_body elems =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr tag_body);
  write_elems b elems;
  Buffer.contents b

let payload_summary ~key ~stamp (nlr : Nlr.t) =
  let b = Buffer.create 128 in
  Buffer.add_char b (Char.chr tag_summary);
  Buffer.add_string b key;
  Varint.write b stamp;
  Varint.write b nlr.input_length;
  write_elems b nlr.elems;
  Buffer.contents b

let payload_matrix (e : matrix_entry) =
  let n = Array.length e.labels in
  let b = Buffer.create (64 + (4 * n * n)) in
  Buffer.add_char b (Char.chr tag_matrix);
  Buffer.add_string b e.ns;
  Varint.write b e.stamp;
  Varint.write b n;
  for i = 0 to n - 1 do
    Varint.write b (String.length e.labels.(i));
    Buffer.add_string b e.labels.(i);
    Buffer.add_string b e.digests.(i)
  done;
  (* the packed storage is exactly the row-major upper triangle the
     format has always written, so this is byte-identical to the old
     dense-matrix loop *)
  Array.iter
    (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v))
    (Symmat.cells e.matrix);
  Buffer.contents b

let payload_signature ~digest (e : sig_entry) =
  let k = Array.length e.sg_mins in
  let b = Buffer.create (32 + (8 * k)) in
  Buffer.add_char b (Char.chr tag_signature);
  Buffer.add_string b digest;
  Varint.write b e.sg_stamp;
  Varint.write b k;
  Array.iter (fun m -> Buffer.add_int64_le b (Int64.of_int m)) e.sg_mins;
  Buffer.contents b

let payload_vdiff ~key (e : vdiff_entry) =
  let b = Buffer.create 256 in
  Buffer.add_char b (Char.chr tag_vdiff);
  Buffer.add_string b key;
  Varint.write b e.vd_stamp;
  Varint.write b e.vd_nruns;
  Varint.write b (Array.length e.vd_cols);
  Array.iter
    (fun (text, present) ->
      Varint.write b (String.length text);
      Buffer.add_string b text;
      Varint.write b (List.length present);
      List.iter (Varint.write b) present)
    e.vd_cols;
  Buffer.contents b

(* {2 Record decoding}

   Decoding validates structure against the running table sizes; any
   violation is damage, diagnosed by a [Bad_record] that the caller
   turns into a salvage point. *)

exception Bad_record of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_record s)) fmt

let read_digest s pos =
  if pos + 16 > String.length s then bad "truncated digest";
  (String.sub s pos 16, pos + 16)

let read_elem ~n_syms ~n_bodies s pos =
  let tag, pos = Varint.read s pos in
  match tag with
  | 0 ->
    let id, pos = Varint.read s pos in
    if id >= n_syms then bad "symbol id %d out of range (%d known)" id n_syms;
    (Nlr.Sym id, pos)
  | 1 ->
    let body, pos = Varint.read s pos in
    let count, pos = Varint.read s pos in
    if body >= n_bodies then
      bad "loop body %d out of range (%d known)" body n_bodies;
    (Nlr.Loop { body; count }, pos)
  | _ -> bad "unknown element tag %d" tag

let read_elems ~n_syms ~n_bodies s pos =
  let n, pos = Varint.read s pos in
  (* an element is at least two varint bytes — a count the remaining
     payload cannot hold is corruption, not a huge allocation *)
  if n * 2 > String.length s - pos then bad "element count %d overruns record" n;
  let pos = ref pos in
  let elems =
    Array.init n (fun _ ->
        let e, p = read_elem ~n_syms ~n_bodies s !pos in
        pos := p;
        e)
  in
  (elems, !pos)

type raw =
  | Rsymbol of string
  | Rbody of Nlr.elem array
  | Rsummary of { key : string; stamp : int; nlr : Nlr.t }
  | Rmatrix of matrix_entry
  | Rsignature of { digest : string; entry : sig_entry }
  | Rvdiff of { key : string; entry : vdiff_entry }

(* [n_syms]/[n_bodies] are the table sizes accumulated from preceding
   records of this load — the only IDs a well-formed record may cite *)
let decode_payload ~n_syms ~n_bodies s =
  if String.length s = 0 then bad "empty payload";
  let len = String.length s in
  let tag = Char.code s.[0] in
  let record =
    if tag = tag_symbol then (Rsymbol (String.sub s 1 (len - 1)), len)
    else if tag = tag_body then begin
      (* a body's loops reference strictly earlier bodies (NLR creates
         inner loops first), so the running count is the right bound *)
      let elems, pos = read_elems ~n_syms ~n_bodies s 1 in
      (Rbody elems, pos)
    end
    else if tag = tag_summary then begin
      let key, pos = read_digest s 1 in
      let stamp, pos = Varint.read s pos in
      let input_length, pos = Varint.read s pos in
      let elems, pos = read_elems ~n_syms ~n_bodies s pos in
      (Rsummary { key; stamp; nlr = { Nlr.elems; input_length } }, pos)
    end
    else if tag = tag_matrix then begin
      let ns, pos = read_digest s 1 in
      let stamp, pos = Varint.read s pos in
      let n, pos = Varint.read s pos in
      (* each object costs ≥ 17 bytes (label length + digest) *)
      if n * 17 > len - pos then bad "object count %d overruns record" n;
      let labels = Array.make n "" and digests = Array.make n "" in
      let pos = ref pos in
      for i = 0 to n - 1 do
        let ll, p = Varint.read s !pos in
        if p + ll > len then bad "truncated matrix label";
        labels.(i) <- String.sub s p ll;
        let d, p = read_digest s (p + ll) in
        digests.(i) <- d;
        pos := p
      done;
      let cells = n * (n + 1) / 2 in
      if !pos + (8 * cells) > len then bad "truncated matrix cells";
      let flat =
        Array.init cells (fun _ ->
            let v = Int64.float_of_bits (String.get_int64_le s !pos) in
            pos := !pos + 8;
            v)
      in
      (Rmatrix { ns; stamp; labels; digests; matrix = Symmat.of_cells ~n flat },
       !pos)
    end
    else if tag = tag_signature then begin
      let digest, pos = read_digest s 1 in
      let stamp, pos = Varint.read s pos in
      let k, pos = Varint.read s pos in
      if pos + (8 * k) > len then bad "truncated signature rows";
      let pos = ref pos in
      let mins =
        Array.init k (fun _ ->
            let v = Int64.to_int (String.get_int64_le s !pos) in
            pos := !pos + 8;
            v)
      in
      (Rsignature { digest; entry = { sg_stamp = stamp; sg_mins = mins } },
       !pos)
    end
    else if tag = tag_vdiff then begin
      let key, pos = read_digest s 1 in
      let stamp, pos = Varint.read s pos in
      let nruns, pos = Varint.read s pos in
      if nruns < 1 then bad "vdiff with %d runs" nruns;
      let ncols, pos = Varint.read s pos in
      (* a column costs at least 2 bytes (empty text, one index) *)
      if ncols * 2 > len - pos then bad "column count %d overruns record" ncols;
      let pos = ref pos in
      let cols =
        Array.init ncols (fun _ ->
            let tl, p = Varint.read s !pos in
            if p + tl > len then bad "truncated vdiff column text";
            let text = String.sub s p tl in
            let np, p = Varint.read s (p + tl) in
            if np < 1 then bad "vdiff column with empty presence";
            if np > nruns then bad "presence count %d exceeds %d runs" np nruns;
            let p = ref p in
            let present =
              List.init np (fun _ ->
                  let i, q = Varint.read s !p in
                  if i >= nruns then
                    bad "run index %d out of range (%d runs)" i nruns;
                  p := q;
                  i)
            in
            pos := !p;
            (text, present))
      in
      (Rvdiff { key; entry = { vd_stamp = stamp; vd_nruns = nruns;
                               vd_cols = cols } },
       !pos)
    end
    else bad "unknown record type %d" tag
  in
  let record, consumed = record in
  if consumed <> len then bad "trailing bytes in record";
  record

(* {2 File scan}

   [scan] splits a file image into CRC-checked, structurally decoded
   records, stopping at the first damage and reporting it. It never
   raises: truncation, bit flips, and malformed varints all fold into
   the [damage] component. *)

let scan s =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    ([], Some "unrecognized magic/version", 0)
  else begin
    let total = String.length s in
    let records = ref [] in
    let damage = ref None in
    let n_syms = ref 0 and n_bodies = ref 0 in
    let pos = ref mlen in
    (try
       while !pos < total && !damage = None do
         let len, p = Varint.read s !pos in
         if p + len + 4 > total then begin
           damage :=
             Some (Printf.sprintf "truncated record at byte %d" !pos)
         end
         else begin
           let payload = String.sub s p len in
           let crc = Crc32.of_le_bytes s (p + len) in
           if Crc32.string payload <> crc then
             damage :=
               Some (Printf.sprintf "CRC mismatch at byte %d" !pos)
           else begin
             match
               decode_payload ~n_syms:!n_syms ~n_bodies:!n_bodies payload
             with
             | Rsymbol _ as r ->
               incr n_syms;
               records := r :: !records;
               pos := p + len + 4
             | Rbody _ as r ->
               incr n_bodies;
               records := r :: !records;
               pos := p + len + 4
             | r ->
               records := r :: !records;
               pos := p + len + 4
             | exception Bad_record reason ->
               damage :=
                 Some (Printf.sprintf "%s at byte %d" reason !pos)
           end
         end
       done
     with Invalid_argument _ ->
       damage := Some (Printf.sprintf "malformed framing at byte %d" !pos));
    (List.rev !records, !damage, total)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* {2 Load} *)

let adopt t records =
  (* replay the tables' intern sequences in record order; an index
     drift (duplicate symbol/body record) would silently renumber every
     later reference, so it is damage, not a tolerable oddity *)
  let symtab = Memo.symtab t.memo and table = Memo.loop_table t.memo in
  let damage = ref None in
  (try
     List.iter
       (fun r ->
         match r with
         | Rsymbol name ->
           let expect = Difftrace_trace.Symtab.size symtab in
           if Difftrace_trace.Symtab.intern symtab name <> expect then
             bad "duplicate symbol %S" name
         | Rbody elems ->
           let expect = Nlr.Loop_table.size table in
           if Nlr.Loop_table.intern table elems <> expect then
             bad "duplicate loop body %d" expect
         | Rsummary { key; stamp; nlr } ->
           Memo.restore t.memo ~key nlr;
           Hashtbl.replace t.stamps key stamp;
           if stamp >= t.next_stamp then t.next_stamp <- stamp + 1
         | Rmatrix e ->
           Hashtbl.replace t.matrices (matrix_identity e) e;
           if e.stamp >= t.next_stamp then t.next_stamp <- e.stamp + 1
         | Rsignature { digest; entry } ->
           Hashtbl.replace t.signatures digest entry;
           if entry.sg_stamp >= t.next_stamp then
             t.next_stamp <- entry.sg_stamp + 1
         | Rvdiff { key; entry } ->
           Hashtbl.replace t.vdiffs key entry;
           if entry.vd_stamp >= t.next_stamp then
             t.next_stamp <- entry.vd_stamp + 1)
       records
   with Bad_record reason -> damage := Some reason);
  !damage

let load ~dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    Error { path = dir; reason = "not a directory" }
  else begin
    let file = Filename.concat dir store_file in
    let t =
      { dir;
        file;
        memo = Memo.create ();
        stamps = Hashtbl.create 64;
        evicted = Hashtbl.create 16;
        matrices = Hashtbl.create 16;
        signatures = Hashtbl.create 64;
        vdiffs = Hashtbl.create 16;
        next_stamp = 0;
        dirty = false;
        salvaged = false }
    in
    if not (Sys.file_exists file) then Ok t
    else
      match read_file file with
      | exception Sys_error reason -> Error { path = file; reason }
      | image ->
        let records, damage, _bytes = scan image in
        let damage =
          match damage with
          | Some _ as d ->
            (* adopt the valid prefix anyway — it is self-consistent *)
            ignore (adopt t records : string option);
            d
          | None -> adopt t records
        in
        (match damage with
        | Some _ ->
          Telemetry.Counter.incr c_crc_fail;
          t.salvaged <- true;
          (* rewrite a clean file on the next flush *)
          t.dirty <- true
        | None -> ());
        Ok t
  end

(* {2 JSM reuse} *)

(* Look up — or compute, persist and stamp — each object's MinHash
   signature, keyed by its attribute-set digest. The hasher's
   per-attribute row-hash table is only built if at least one object
   misses. Signatures depend solely on the attribute-name set the
   digest certifies, so a hit is bit-identical to recomputation. *)
let signatures_of t ctx digests =
  let hash = lazy (Sketch.hasher ctx) in
  Array.mapi
    (fun i digest ->
      match Hashtbl.find_opt t.signatures digest with
      | Some e ->
        Telemetry.Counter.incr c_sig_hits;
        e.sg_mins
      | None ->
        Telemetry.Counter.incr c_sig_misses;
        let mins = (Lazy.force hash) i in
        let stamp = t.next_stamp in
        t.next_stamp <- stamp + 1;
        Hashtbl.replace t.signatures digest { sg_stamp = stamp; sg_mins = mins };
        t.dirty <- true;
        mins)
    digests

let jsm t ~config ~init ctx =
  let ns = Config.digest config in
  let n = Context.n_objects ctx in
  let labels = Array.init n (Context.object_label ctx) in
  let digests = Array.init n (object_digest ctx) in
  (* per-candidate (label -> digest, base row) view, first occurrence
     winning exactly as [Jsm.extend]'s own label resolution does *)
  let entry_map (e : matrix_entry) =
    let tbl = Hashtbl.create (2 * Array.length e.labels) in
    Array.iteri
      (fun i l -> if not (Hashtbl.mem tbl l) then Hashtbl.add tbl l e.digests.(i))
      e.labels;
    tbl
  in
  let matches map =
    let c = ref 0 in
    for i = 0 to n - 1 do
      match Hashtbl.find_opt map labels.(i) with
      | Some d when String.equal d digests.(i) -> incr c
      | _ -> ()
    done;
    !c
  in
  (* best base: most matched objects; stamp then identity break ties so
     the choice is independent of hashtable iteration order *)
  let best = ref None in
  Hashtbl.iter
    (fun id (e : matrix_entry) ->
      if String.equal e.ns ns then begin
        let map = entry_map e in
        let m = matches map in
        if m > 0 then
          match !best with
          | Some (_, _, bm, bstamp, bid)
            when bm > m
                 || (bm = m && (e.stamp < bstamp
                               || (e.stamp = bstamp && String.compare id bid >= 0)))
            -> ()
          | _ -> best := Some (e, map, m, e.stamp, id)
      end)
    t.matrices;
  (* in sketch mode the candidate adjacency is rebuilt from (mostly
     cached) signatures either way; because candidacy is a pairwise
     function of two signatures, extending a cached sketch matrix is
     bit-identical to sketching from scratch — the exact reuse
     guarantee the store gives exact matrices *)
  let candidates =
    match config.Config.mode with
    | Config.Exact -> None
    | Config.Sketch -> Some (Sketch.candidates (signatures_of t ctx digests))
  in
  let result, covered =
    match !best with
    | Some (e, map, m, _, _) ->
      Telemetry.Counter.incr c_hits;
      let fresh =
        Array.init n (fun i ->
            match Hashtbl.find_opt map labels.(i) with
            | Some d when String.equal d digests.(i) -> false
            | _ -> true)
      in
      let base = { Jsm.labels = e.labels; m = e.matrix } in
      ( (match candidates with
        | None -> Jsm.extend ~init ~base ~fresh ctx
        | Some candidates ->
          Jsm.extend_sketch ~init ~base ~fresh ~candidates ctx),
        m = n )
    | None ->
      Telemetry.Counter.incr c_misses;
      ( (match candidates with
        | None -> Jsm.compute ~init ctx
        | Some candidates -> Jsm.compute_sketch ~init ~candidates ctx),
        false )
  in
  if not covered then begin
    let stamp = t.next_stamp in
    t.next_stamp <- stamp + 1;
    let e = { ns; stamp; labels; digests; matrix = result.Jsm.m } in
    Hashtbl.replace t.matrices (matrix_identity e) e;
    t.dirty <- true
  end;
  result

(* {2 Variational alignments} *)

let find_vdiff t ~key =
  match Hashtbl.find_opt t.vdiffs key with
  | Some e ->
    Telemetry.Counter.incr c_vdiff_hits;
    Some e.vd_cols
  | None ->
    Telemetry.Counter.incr c_vdiff_misses;
    None

let add_vdiff t ~key ~nruns cols =
  let stamp = t.next_stamp in
  t.next_stamp <- stamp + 1;
  Hashtbl.replace t.vdiffs key
    { vd_stamp = stamp; vd_nruns = nruns; vd_cols = cols };
  t.dirty <- true

(* {2 Eviction, flush, stats} *)

(* summaries not yet persisted (no stamp) sort newest; among them key
   order decides — everything deterministic for a given workload *)
let summary_entries t =
  Memo.fold t.memo ~init:[] ~f:(fun key nlr acc ->
      if Hashtbl.mem t.evicted key then acc
      else
        let stamp =
          match Hashtbl.find_opt t.stamps key with
          | Some s -> s
          | None -> max_int
        in
        (key, stamp, nlr) :: acc)
  |> List.sort (fun (k1, s1, _) (k2, s2, _) ->
         match compare s1 s2 with 0 -> String.compare k1 k2 | c -> c)

let matrix_entries t =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.matrices []
  |> List.sort (fun (i1, e1) (i2, e2) ->
         match compare e1.stamp e2.stamp with
         | 0 -> String.compare i1 i2
         | c -> c)

let signature_entries t =
  Hashtbl.fold (fun d e acc -> (d, e) :: acc) t.signatures []
  |> List.sort (fun (d1, e1) (d2, e2) ->
         match compare e1.sg_stamp e2.sg_stamp with
         | 0 -> String.compare d1 d2
         | c -> c)

let vdiff_entries t =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.vdiffs []
  |> List.sort (fun (k1, e1) (k2, e2) ->
         match compare e1.vd_stamp e2.vd_stamp with
         | 0 -> String.compare k1 k2
         | c -> c)

let drop_oldest entries ~keep =
  let total = List.length entries in
  if total <= keep then ([], entries)
  else
    let excess = total - keep in
    let rec split n = function
      | dropped when n = 0 -> ([], dropped)
      | [] -> ([], [])
      | e :: rest ->
        let d, k = split (n - 1) rest in
        (e :: d, k)
    in
    split excess entries

let evict ?(keep_summaries = default_keep_summaries)
    ?(keep_matrices = default_keep_matrices)
    ?(keep_signatures = default_keep_signatures)
    ?(keep_vdiffs = default_keep_vdiffs) t =
  let drop_s, _ = drop_oldest (summary_entries t) ~keep:keep_summaries in
  List.iter (fun (key, _, _) -> Hashtbl.replace t.evicted key ()) drop_s;
  let drop_m, _ = drop_oldest (matrix_entries t) ~keep:keep_matrices in
  List.iter (fun (id, _) -> Hashtbl.remove t.matrices id) drop_m;
  (* signatures ride the same stamp order as everything else, so a
     sketch-heavy store ages out its oldest sketches first instead of
     growing without bound (they used to escape eviction entirely) *)
  let drop_g, _ = drop_oldest (signature_entries t) ~keep:keep_signatures in
  List.iter (fun (d, _) -> Hashtbl.remove t.signatures d) drop_g;
  let drop_v, _ = drop_oldest (vdiff_entries t) ~keep:keep_vdiffs in
  List.iter (fun (k, _) -> Hashtbl.remove t.vdiffs k) drop_v;
  let ns = List.length drop_s
  and nm = List.length drop_m
  and ng = List.length drop_g
  and nv = List.length drop_v in
  if ns + nm + ng + nv > 0 then begin
    Telemetry.Counter.add c_evictions (ns + nm + ng + nv);
    t.dirty <- true
  end;
  (ns, nm, ng, nv)

let gc ?keep_summaries ?keep_matrices ?keep_signatures ?keep_vdiffs t =
  evict ?keep_summaries ?keep_matrices ?keep_signatures ?keep_vdiffs t

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let has_new_summaries t =
  Memo.fold t.memo ~init:false ~f:(fun key _ acc ->
      acc || not (Hashtbl.mem t.stamps key))

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let symtab = Memo.symtab t.memo and table = Memo.loop_table t.memo in
  Array.iter
    (fun name -> add_record buf (payload_symbol name))
    (Difftrace_trace.Symtab.names symtab);
  for id = 0 to Nlr.Loop_table.size table - 1 do
    add_record buf (payload_body (Nlr.Loop_table.body table id))
  done;
  List.iter
    (fun (key, stamp, nlr) ->
      let stamp =
        if stamp = max_int then begin
          let s = t.next_stamp in
          t.next_stamp <- s + 1;
          Hashtbl.replace t.stamps key s;
          s
        end
        else stamp
      in
      add_record buf (payload_summary ~key ~stamp nlr))
    (summary_entries t);
  List.iter
    (fun (digest, e) -> add_record buf (payload_signature ~digest e))
    (signature_entries t);
  List.iter (fun (_, e) -> add_record buf (payload_matrix e)) (matrix_entries t);
  List.iter (fun (key, e) -> add_record buf (payload_vdiff ~key e))
    (vdiff_entries t);
  Buffer.contents buf

let flush t =
  if not (t.dirty || has_new_summaries t) then Ok ()
  else begin
    ignore (evict t : int * int * int * int);
    match
      mkdir_p t.dir;
      let tmp = t.file ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (render t));
      Sys.rename tmp t.file
    with
    | () ->
      t.dirty <- false;
      t.salvaged <- false;
      Ok ()
    | exception Sys_error reason -> Error { path = t.file; reason }
    | exception Unix.Unix_error (e, _, arg) ->
      Error { path = arg; reason = Unix.error_message e }
  end

type stats = {
  summaries : int;
  matrices : int;
  signatures : int;
  vdiffs : int;
  symbols : int;
  loop_bodies : int;
  file_bytes : int;
  salvaged : bool;
}

let stats t =
  { summaries = List.length (summary_entries t);
    matrices = Hashtbl.length t.matrices;
    signatures = Hashtbl.length t.signatures;
    vdiffs = Hashtbl.length t.vdiffs;
    symbols = Difftrace_trace.Symtab.size (Memo.symtab t.memo);
    loop_bodies = Nlr.Loop_table.size (Memo.loop_table t.memo);
    file_bytes =
      (try (Unix.stat t.file).Unix.st_size with Unix.Unix_error _ -> 0);
    salvaged = t.salvaged }

let render_stats s =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "summaries   %d\n" s.summaries;
  Printf.bprintf buf "matrices    %d\n" s.matrices;
  Printf.bprintf buf "signatures  %d\n" s.signatures;
  (* conditional like [salvaged]: stores that never served a vdiff
     render exactly as they always have *)
  if s.vdiffs > 0 then Printf.bprintf buf "vdiffs      %d\n" s.vdiffs;
  Printf.bprintf buf "symbols     %d\n" s.symbols;
  Printf.bprintf buf "loop bodies %d\n" s.loop_bodies;
  Printf.bprintf buf "file bytes  %d\n" s.file_bytes;
  if s.salvaged then Buffer.add_string buf "salvaged    yes\n";
  Buffer.contents buf

type check = {
  c_records : int;
  c_summaries : int;
  c_matrices : int;
  c_signatures : int;
  c_vdiffs : int;
  c_symbols : int;
  c_loop_bodies : int;
  c_bytes : int;
  c_damage : string option;
}

let verify ~dir =
  let file = Filename.concat dir store_file in
  if not (Sys.file_exists file) then
    Ok
      { c_records = 0;
        c_summaries = 0;
        c_matrices = 0;
        c_signatures = 0;
        c_vdiffs = 0;
        c_symbols = 0;
        c_loop_bodies = 0;
        c_bytes = 0;
        c_damage = None }
  else
    match read_file file with
    | exception Sys_error reason -> Error { path = file; reason }
    | image ->
      let records, damage, bytes = scan image in
      let sy = ref 0 and bo = ref 0 and su = ref 0 and ma = ref 0 in
      let sg = ref 0 and vd = ref 0 in
      List.iter
        (function
          | Rsymbol _ -> incr sy
          | Rbody _ -> incr bo
          | Rsummary _ -> incr su
          | Rmatrix _ -> incr ma
          | Rsignature _ -> incr sg
          | Rvdiff _ -> incr vd)
        records;
      Ok
        { c_records = List.length records;
          c_summaries = !su;
          c_matrices = !ma;
          c_signatures = !sg;
          c_vdiffs = !vd;
          c_symbols = !sy;
          c_loop_bodies = !bo;
          c_bytes = bytes;
          c_damage = damage }

let render_check c =
  let buf = Buffer.create 128 in
  (match c.c_damage with
  | None -> Printf.bprintf buf "store: ok (%d records)\n" c.c_records
  | Some reason ->
    Printf.bprintf buf "store: damaged — %s (%d records salvageable)\n" reason
      c.c_records);
  Printf.bprintf buf "summaries   %d\n" c.c_summaries;
  Printf.bprintf buf "matrices    %d\n" c.c_matrices;
  Printf.bprintf buf "signatures  %d\n" c.c_signatures;
  if c.c_vdiffs > 0 then Printf.bprintf buf "vdiffs      %d\n" c.c_vdiffs;
  Printf.bprintf buf "symbols     %d\n" c.c_symbols;
  Printf.bprintf buf "loop bodies %d\n" c.c_loop_bodies;
  Buffer.contents buf
