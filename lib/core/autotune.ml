module Filter = Difftrace_filter.Filter
module Attributes = Difftrace_fca.Attributes
module Linkage = Difftrace_cluster.Linkage
module Telemetry = Difftrace_obs.Telemetry

let c_evaluated = Telemetry.Counter.make "autotune.configs.evaluated"

type candidate = {
  config : Config.t;
  bscore : float;
  concentration : float;
  top_suspect : string option;
}

type result = {
  best : candidate;
  ranked : candidate list;
  evaluated : int;
  cache : Memo.stats;
}

let evaluate ?memo ?store config ~normal ~faulty =
  Telemetry.Counter.incr c_evaluated;
  let c = Pipeline.compare_runs ?memo ?store config ~normal ~faulty in
  let suspects = c.Pipeline.suspects in
  let total = Array.fold_left (fun acc (_, s) -> acc +. s) 0.0 suspects in
  let concentration =
    if total <= 1e-12 || Array.length suspects = 0 then 0.0
    else snd suspects.(0) /. total
  in
  { config;
    bscore = c.Pipeline.bscore;
    concentration;
    top_suspect =
      (if Array.length suspects > 0 && snd suspects.(0) > 1e-9 then
         Some (fst suspects.(0))
       else None) }

let better a b =
  match Float.compare a.bscore b.bscore with
  | 0 -> Float.compare b.concentration a.concentration
  | c -> c

let search ?(engine = Engine.Sequential) ?memo ?store ?filters ?attrs
    ?(ks = [ 10 ]) ?linkages ~normal ~faulty () =
  let filters =
    match filters with
    | Some f -> f
    | None -> [ Filter.make [ Filter.Mpi_all ]; Filter.make [ Filter.Everything ] ]
  in
  let attrs = match attrs with Some a -> a | None -> Attributes.all in
  let linkages = match linkages with Some l -> l | None -> [ Linkage.Ward ] in
  let empty_axes =
    List.filter_map
      (fun (name, empty) -> if empty then Some name else None)
      [ ("filters", filters = []);
        ("attrs", attrs = []);
        ("K", ks = []);
        ("linkages", linkages = []) ]
  in
  if empty_axes <> [] then
    Error
      (Session.Invalid
         (Printf.sprintf
            "autotune: empty parameter axis (%s): nothing to sweep"
            (String.concat ", " empty_axes)))
  else
  Telemetry.Span.with_ "autotune" @@ fun () ->
  (* one memo for the whole sweep: grid points that differ only in
     attributes or linkage reuse every NLR summary. A store brings its
     own memo (pre-warmed from disk) and persists the sweep's work. *)
  let memo =
    match store with
    | Some st ->
      if memo <> None then
        invalid_arg "Autotune.search: pass ?memo or ?store, not both";
      Store.memo st
    | None -> ( match memo with Some m -> m | None -> Memo.create ())
  in
  let before = Memo.stats memo in
  let candidates =
    List.concat_map
      (fun filter ->
        List.concat_map
          (fun attr ->
            List.concat_map
              (fun k ->
                List.map
                  (fun linkage ->
                    let config =
                      Config.default
                      |> Config.with_filter filter
                      |> Config.with_attrs attr
                      |> Config.with_k k
                      |> Config.with_linkage linkage
                      |> Config.with_engine engine
                    in
                    match store with
                    | Some st -> evaluate ~store:st config ~normal ~faulty
                    | None -> evaluate ~memo config ~normal ~faulty)
                  linkages)
              ks)
          attrs)
      filters
  in
  let ranked = List.stable_sort better candidates in
  let after = Memo.stats memo in
  match ranked with
  | [] ->
    (* unreachable (every axis was checked non-empty above), but a
       degenerate grid must stay an [Error], never an assertion a
       resident daemon dies on *)
    Error (Session.Invalid "autotune: empty parameter grid: nothing to sweep")
  | best :: _ ->
    Ok
      { best;
        ranked;
        evaluated = List.length candidates;
        cache =
          { Memo.hits = after.Memo.hits - before.Memo.hits;
            misses = after.Memo.misses - before.Memo.misses } }

let render r =
  Difftrace_util.Texttable.render
    ~headers:[ "Configuration"; "B-score"; "Concentration"; "Top suspect" ]
    (List.map
       (fun c ->
         [ Config.name c.config;
           Printf.sprintf "%.3f" c.bscore;
           Printf.sprintf "%.2f" c.concentration;
           Option.value ~default:"-" c.top_suspect ])
       r.ranked)
