(** One point in DiffTrace's parameter space (the dashed box of the
    paper's Fig. 1): front-end filter × FCA attributes × NLR constant ×
    linkage method. Ranking tables sweep grids of these.

    The [engine] field selects how the pipeline executes — it never
    changes analysis results (see {!Engine}), so it is not part of the
    configuration's {!name}. *)

(** How the JSM is built. [Exact] (the default) evaluates every pair
    and pins today's byte-identical output; [Sketch] routes through
    the MinHash/LSH tier ({!Difftrace_cluster.Sketch}): only LSH
    candidate pairs are evaluated exactly, pruned pairs read 0.0 —
    near-linear instead of quadratic on sparse-similarity corpora. *)
type mode = Exact | Sketch

(** ["exact"] / ["sketch"]. *)
val mode_name : mode -> string

(** Inverse of {!mode_name}; raises [Invalid_argument] (with the
    offending string named) on anything else. *)
val mode_of_string : string -> mode

type t = {
  filter : Difftrace_filter.Filter.t;
  attrs : Difftrace_fca.Attributes.spec;
  k : int;            (** NLR constant K *)
  repeats : int;      (** NLR loop-creation threshold *)
  linkage : Difftrace_cluster.Linkage.method_;
  engine : Engine.t;  (** execution engine for the hot stages *)
  mode : mode;        (** exact or sketch JSM construction *)
}

(** [make ?filter ?attrs ?k ?repeats ?linkage ?engine ?mode ()] —
    defaults: MPI-all filter, single/noFreq attributes, K=10,
    repeats=2, ward, sequential engine, exact mode. *)
val make :
  ?filter:Difftrace_filter.Filter.t ->
  ?attrs:Difftrace_fca.Attributes.spec ->
  ?k:int ->
  ?repeats:int ->
  ?linkage:Difftrace_cluster.Linkage.method_ ->
  ?engine:Engine.t ->
  ?mode:mode ->
  unit ->
  t

(** [default] = [make ()]. *)
val default : t

(** {2 With-style builders}

    Functional updates for deriving configurations, in pipeline order:
    [Config.default |> Config.with_k 50 |> Config.with_linkage Average].
    Grid construction ({!Autotune}, {!Ranking}) and the CLI build their
    configurations this way instead of rebuilding records by hand. *)

val with_filter : Difftrace_filter.Filter.t -> t -> t
val with_attrs : Difftrace_fca.Attributes.spec -> t -> t
val with_k : int -> t -> t
val with_repeats : int -> t -> t
val with_linkage : Difftrace_cluster.Linkage.method_ -> t -> t
val with_engine : Engine.t -> t -> t
val with_mode : mode -> t -> t

(** [filter_name t] — e.g. ["11.mpiall.cust.K10"] (the paper's filter
    column, K folded in). *)
val filter_name : t -> string

(** [attrs_name t] — e.g. ["sing.noFreq"]. *)
val attrs_name : t -> string

(** [name t] — full label including the linkage; sketch mode appends
    [" [sketch]"], exact mode renders exactly as it always has. *)
val name : t -> string

(** [digest t] — 16 raw bytes identifying the analysis-shaping part of
    the configuration (filter, attrs, K, repeats, and the sketch/exact
    mode; {e not} linkage or engine, which never change attribute
    sets). The analysis store namespaces cached JSM matrices by this
    digest; sketch matrices get their own namespace because pruned
    cells hold 0.0, while exact mode keeps the historical digest so
    existing stores stay warm. Correctness of JSM reuse rests on
    per-object attribute digests, not on this partition key — a
    collision costs lookup efficiency, never wrong results. *)
val digest : t -> string

(** The configuration as a JSON object (filter/attrs/k/repeats/linkage
    by name plus the engine, plus ["mode"] when it is not the exact
    default) — embedded in [--profile-json] reports and bench
    artifacts so a recorded run names its parameters. *)
val to_json : t -> Difftrace_obs.Telemetry.Json.t
