(** The session API: every operation a DiffTrace frontend serves —
    one-shot CLI subcommand or resident daemon request — as a plain
    [Config.t -> request -> (response, error) result] function over a
    warm {!t}.

    A session owns the state that makes repeated analysis cheap: an
    optional persistent {!Store} (whose memo it adopts), otherwise a
    fresh {!Memo}, plus a table of named in-memory runs registered by
    {!record}. Two frontends driving the same session API over the same
    inputs produce byte-identical [output] strings — that is the
    contract the daemon's protocol responses and the one-shot CLI are
    both built on (see test/serve.t).

    Every response carries its CLI rendering in an [output] field next
    to the structured data, so frontends never re-implement (and never
    drift from) the report formats pinned in test/cli.t. *)

(** {2 One coherent error type}

    Everything that can go wrong across the pipeline, the archives, the
    store and the serve protocol, under one sum — frontends match on
    the constructor, the wire encodes {!error_kind}. *)

type error =
  | Invalid of string  (** malformed request parameters *)
  | Unknown_workload of { name : string; known : string list }
  | Unknown_frontend of { name : string; known : string list }
  | Unknown_run of { name : string; known : string list }
  | Unknown_label of Pipeline.lookup_error
      (** a trace label that exists in neither run *)
  | Archive_failed of Difftrace_parlot.Archive.error
  | Frontend_failed of Difftrace_frontend.Frontend.error
      (** a foreign-format ingestion rejected its input *)
  | Store_failed of string
  | Run_failed of string  (** the workload itself raised *)
  | Protocol of string
      (** malformed, oversized or version-incompatible protocol input *)

(** Stable kebab-case tag for the wire ("invalid-params",
    "unknown-run", "archive-error", ...). *)
val error_kind : error -> string

val error_to_string : error -> string

(** {2 Sessions} *)

type t

(** [create ?store ()] — a fresh session. With [store], the session
    analyzes through it (adopting its memo, so a warm store means zero
    summarizations from the first request); without, it uses a fresh
    in-process memo. *)
val create : ?store:Store.t -> unit -> t

val store : t -> Store.t option
val memo : t -> Memo.t

(** [flush t] persists the store, if any (no-op when storeless or
    fully warm). *)
val flush : t -> (unit, error) result

(** {2 Sources}

    Where an operation's traces come from. Frontends that execute
    workloads themselves (the CLI, the daemon's workload-backed
    requests) inject the outcome as [Traces]. *)

type source =
  | Traces of Difftrace_trace.Trace_set.t
  | Archive of { dir : string; salvage : bool }
      (** load (streaming, chunk-at-a-time) from an on-disk archive;
          [salvage] recovers the checksum-valid prefix of damaged
          traces — including the partially-written archive of a run
          that is {e still executing} *)
  | Run of string  (** a run registered in this session by {!record} *)
  | Ingest of { path : string; frontend : string }
      (** a foreign-format file (CI log, strace capture, ...) ingested
          through the named {!Difftrace_frontend.Registry} frontend *)

(** [resolve t ~engine source] — the trace set plus any salvage
    outcomes (always [[]] for [Traces]/[Run]/[Ingest]). Archive loads
    and frontend ingestion fan per-thread work over [engine]. *)
val resolve :
  t ->
  engine:Engine.t ->
  source ->
  (Difftrace_trace.Trace_set.t * Difftrace_parlot.Archive.salvage list, error)
  result

(** {2 Record} *)

type record_request = {
  rc_name : string option;  (** register the run in-memory under this name *)
  rc_dir : string option;  (** archive it to this directory *)
  rc_format : Difftrace_parlot.Archive.format;
}

type record_response = {
  rc_files : int;  (** trace files archived (0 without [rc_dir]) *)
  rc_traces : int;
  rc_events : int;
  rc_hung : int;  (** threads that never terminated *)
  rc_output : string;
}

(** [record t ~outcome req] archives and/or registers one executed
    run. When both [rc_name] and [rc_dir] are given, the registered
    set is re-ingested from the archive through the checksummed
    streaming decoder ({!Difftrace_parlot.Tracer.stream}) — the
    daemon's chunk-at-a-time ingestion path — rather than adopted from
    memory, so what later requests analyze is exactly what a separate
    process would load. *)
val record :
  t ->
  outcome:Difftrace_simulator.Runtime.outcome ->
  record_request ->
  (record_response, error) result

(** [run_names t] — registered runs, sorted. *)
val run_names : t -> (string * int) list

(** {2 Ingest}

    Pull a foreign-format file through a registered frontend once, and
    keep the result: as a named in-session run, as an on-disk archive,
    or both — after which every other operation (compare, triage,
    query, vdiff) consumes it like any simulator run. *)

type ingest_request = {
  ig_path : string;
  ig_frontend : string;
  ig_name : string option;  (** register the set under this run name *)
  ig_dir : string option;  (** archive it to this directory *)
  ig_format : Difftrace_parlot.Archive.format;
}

type ingest_response = {
  ig_traces : int;
  ig_events : int;
  ig_files : int;  (** trace files archived (0 without [ig_dir]) *)
  ig_digest : string;
      (** the canonical {!Difftrace_frontend.Frontend.digest} — equal
          digests mean the analysis pipeline cannot tell the sets
          apart *)
  ig_output : string;
}

val ingest :
  t -> Config.t -> ingest_request -> (ingest_response, error) result

(** {2 Compare / analyze} *)

type compare_request = {
  cp_normal : source;
  cp_faulty : source;
  cp_diffnlr : string option;  (** trace to diff; default: top suspect *)
}

type compare_response = {
  cp_bscore : float;
  cp_top_processes : int list;
  cp_top_threads : string list;
  cp_suspects : (string * float) array;
  cp_salvaged : Difftrace_parlot.Archive.salvage list;
  cp_comparison : Pipeline.comparison;  (** for programmatic drill-down *)
  cp_output : string;
}

(** [compare t config req] — the relative-debugging loop; [cp_output]
    is byte-identical to [difftrace compare]'s report. *)
val compare :
  t -> Config.t -> compare_request -> (compare_response, error) result

(** [analyze t config req] — same computation, rendered like
    [difftrace analyze] (salvage lines first, no process/thread
    ranking). *)
val analyze :
  t -> Config.t -> compare_request -> (compare_response, error) result

(** {2 Triage} *)

type triage_request = {
  tg_subject : source;
  tg_limit : int;  (** rows shown in the outlier/progress tables *)
}

type triage_response = {
  tg_entries : Pipeline.triage_entry array;
  tg_output : string;
}

(** [triage ?outcome t config req] — single-run outlier analysis.
    With [outcome] (a frontend that just executed the run), the output
    additionally carries the HUNG banner and the logical-clock
    progress section, matching [difftrace triage] exactly; archive- or
    run-sourced triage omits those two outcome-only sections. *)
val triage :
  ?outcome:Difftrace_simulator.Runtime.outcome ->
  t ->
  Config.t ->
  triage_request ->
  (triage_response, error) result

(** {2 Query}

    The drill-down query language over the indexed event database
    (see {!Difftrace_eventdb.Query} for the grammar). *)

type query_request = {
  qy_text : string;  (** one query line, e.g. ["count MPI_Send on 3"] *)
  qy_source : source;
  qy_against : source option;
      (** the second (faulty) run, required by [diverge] *)
}

type query_response = {
  qy_kind : string;  (** stable result-shape tag ("count", "list", ...) *)
  qy_size : int;  (** headline match/row count *)
  qy_warm : bool;  (** every index came off disk; no rebuild *)
  qy_output : string;
}

(** [query t config req] parses and evaluates one query. With a store,
    indexes persist under [<store>/eventdb/<digest>.edb] and warm
    reruns load instead of rebuilding ([qy_warm]); index builds fan
    per-thread work over [config]'s engine. Malformed queries are
    [Invalid]; an unknown thread label is [Unknown_label] listing the
    labels the database actually has. *)
val query : t -> Config.t -> query_request -> (query_response, error) result

(** {2 Variational diff}

    The n-way generalization of {!compare}: k runs merged into one
    conditioned variational NLR (see {!Difftrace_variational}). *)

type vdiff_run = {
  vdr_name : string;  (** display name, e.g. a campaign cell label *)
  vdr_source : source;
  vdr_axes : (string * string) list;
      (** condition axes, e.g. [[("fault", "f2"); ("seed", "3")]] *)
  vdr_bad : bool;  (** verdict label: this run went wrong *)
}

type vdiff_request = {
  vd_runs : vdiff_run list;  (** at least two *)
  vd_trace : string option;
      (** trace label to align; default: the first label (in run 0's
          order) common to every run *)
}

type vdiff_response = {
  vd_nruns : int;
  vd_columns : int;  (** merged alignment width *)
  vd_regions : int;
  vd_warm : bool;  (** the alignment replayed from the store *)
  vd_condition : string option;
      (** the bad set's minimal discriminating condition; [None] when
          no run — or every run — is bad *)
  vd_output : string;
}

(** [vdiff t config req] — align one trace label across every run and
    render the conditioned variational NLR: regions annotated with
    their minimal presence condition, ranked suspect regions, the bad
    set's discriminating condition, and an event-DB footer pinning each
    suspect to its first raw-event divergence. All runs analyze against
    the session's shared tables. With a store, the merged alignment
    persists keyed by a digest of the aligned sequences, so a warm
    rerun ([vd_warm]) skips the k-way re-alignment entirely. *)
val vdiff : t -> Config.t -> vdiff_request -> (vdiff_response, error) result

(** {2 Status} *)

type status = {
  st_runs : (string * int) list;  (** registered runs: name, traces *)
  st_summaries : int;  (** cached NLR summaries (memo) *)
  st_memo : Memo.stats;
  st_store : Store.stats option;
  st_output : string;
}

val status : t -> status
