open Difftrace_trace
module Filter = Difftrace_filter.Filter
module Nlr = Difftrace_nlr.Nlr
module Attributes = Difftrace_fca.Attributes
module Context = Difftrace_fca.Context
module Lattice = Difftrace_fca.Lattice
module Jsm = Difftrace_cluster.Jsm
module Linkage = Difftrace_cluster.Linkage
module Bscore = Difftrace_cluster.Bscore
module Diffnlr = Difftrace_diff.Diffnlr
module Telemetry = Difftrace_obs.Telemetry
module Span = Telemetry.Span

let c_summaries = Telemetry.Counter.make "nlr.summaries"
let c_traces = Telemetry.Counter.make "pipeline.traces.analyzed"

type analysis = {
  config : Config.t;
  symtab : Symtab.t;
  loop_table : Nlr.Loop_table.t;
  labels : string array;
  nlrs : (Nlr.t * bool) array;
  context : Context.t;
  lattice : Lattice.t Lazy.t;
  jsm : Jsm.t;
}

type lookup_error = { unknown : string; known : string array }

let lookup_error_to_string e =
  Printf.sprintf "unknown trace label %S (known labels: %s)" e.unknown
    (String.concat ", " (Array.to_list e.known))

(* Re-intern a trace's call IDs into the shared symbol table so that
   the normal and faulty runs (separate captures) agree on IDs — a
   precondition for sharing the loop table across the two runs. *)
let remap_calls ~shared ~own (tr : Trace.t) =
  Array.map
    (fun id -> Symtab.intern shared (Symtab.name own id))
    (Trace.call_ids tr)

(* Summarize every trace, in three stages:
   1. probe the memo cache (sequential);
   2. summarize the misses, each into its own private loop table — the
      engine may fan this out across domains;
   3. re-intern the private tables into the shared one in trace order
      (sequential), which assigns the exact IDs a sequential
      shared-table run would, and fill the cache.
   The output is byte-identical across engines and to the historical
   direct-interning implementation (see {!Nlr.reintern}). *)
let summarize ~engine ~memo ~table ~k ~repeats idss =
  Span.with_ "summarize" @@ fun () ->
  let n = Array.length idss in
  let keys =
    match memo with
    | None -> [||]
    | Some _ -> Array.map (fun ids -> Memo.key ~ids ~k ~repeats) idss
  in
  let cached =
    match memo with
    | None -> Array.make n None
    | Some m -> Array.map (fun key -> Memo.find m key) keys
  in
  let fresh =
    Engine.init engine n (fun i ->
        match cached.(i) with
        | Some _ -> None
        | None ->
          let local = Nlr.Loop_table.create () in
          Some (local, Nlr.of_ids ~table:local ~k ~repeats idss.(i)))
  in
  Telemetry.Counter.add c_summaries
    (Array.fold_left
       (fun acc o -> match o with Some _ -> acc + 1 | None -> acc)
       0 fresh);
  Array.mapi
    (fun i -> function
      | None -> (
        match cached.(i) with Some nlr -> nlr | None -> assert false)
      | Some (local, nlr) ->
        let nlr = Nlr.reintern ~from:local ~into:table nlr in
        (match memo with Some m -> Memo.add m keys.(i) nlr | None -> ());
        nlr)
    fresh

let analyze ?symtab ?loop_table ?memo ?store (config : Config.t) ts =
  let memo =
    match store with
    | None -> memo
    | Some st ->
      if memo <> None then
        invalid_arg
          "Pipeline.analyze: ?store carries its own memo; do not also pass \
           ?memo";
      Some (Store.memo st)
  in
  let shared, table =
    match memo with
    | Some m ->
      if symtab <> None || loop_table <> None then
        invalid_arg
          "Pipeline.analyze: ?memo carries its own shared tables; do not also \
           pass ?symtab/?loop_table";
      (Memo.symtab m, Memo.loop_table m)
    | None ->
      ( (match symtab with Some s -> s | None -> Symtab.create ()),
        match loop_table with Some t -> t | None -> Nlr.Loop_table.create () )
  in
  Span.with_ "analyze" @@ fun () ->
  let engine = config.Config.engine in
  let filtered = Span.with_ "filter" (fun () -> Filter.apply_set config.Config.filter ts) in
  let own = Trace_set.symtab filtered in
  let traces = Trace_set.traces filtered in
  Telemetry.Counter.add c_traces (Array.length traces);
  (* single-threaded runs are labeled "5", hybrid runs "5.0"/"5.4",
     matching the paper's tables *)
  let short = Array.for_all (fun tr -> tr.Trace.tid = 0) traces in
  let labels = Array.map (fun tr -> Trace.label ~short tr) traces in
  let idss = Array.map (fun tr -> remap_calls ~shared ~own tr) traces in
  let summaries =
    summarize ~engine ~memo ~table ~k:config.Config.k
      ~repeats:config.Config.repeats idss
  in
  let nlrs =
    Array.mapi (fun i nlr -> (nlr, traces.(i).Trace.truncated)) summaries
  in
  let rows =
    Span.with_ "attributes" @@ fun () ->
    Array.to_list
      (Array.mapi
         (fun i (nlr, _) ->
           (labels.(i), Attributes.of_nlr config.Config.attrs shared nlr))
         nlrs)
  in
  let context = Span.with_ "context" (fun () -> Context.of_attr_sets rows) in
  { config;
    symtab = shared;
    loop_table = table;
    labels;
    nlrs;
    context;
    lattice = lazy (Span.with_ "lattice" (fun () -> Lattice.of_context_incremental context));
    jsm =
      (Span.with_ "jsm" @@ fun () ->
       match store with
       | Some st -> Store.jsm st ~config ~init:(Engine.init engine) context
       | None -> (
         match config.Config.mode with
         | Config.Exact -> Jsm.compute ~init:(Engine.init engine) context
         | Config.Sketch ->
           (* storeless sketch: signatures are rebuilt each run; the
              candidate adjacency is a pure function of them, so the
              matrix is still deterministic across engines *)
           let sigs = Difftrace_cluster.Sketch.of_context context in
           Jsm.compute_sketch ~init:(Engine.init engine)
             ~candidates:(Difftrace_cluster.Sketch.candidates sigs)
             context)) }

let index_of labels label =
  let found = ref None in
  Array.iteri
    (fun i l -> if l = label && !found = None then found := Some i)
    labels;
  !found

let find_nlr analysis label =
  match index_of analysis.labels label with
  | Some i -> Ok analysis.nlrs.(i)
  | None -> Error { unknown = label; known = analysis.labels }

type comparison = {
  cmp_config : Config.t;
  normal : analysis;
  faulty : analysis;
  jsm_d : Jsm.t;
  bscore : float;
  suspects : (string * float) array;
  only_normal : string list;
  only_faulty : string list;
}

let compare_runs ?memo ?store (config : Config.t) ~normal ~faulty =
  Span.with_ "compare_runs" @@ fun () ->
  let symtab, loop_table =
    match (memo, store) with
    | Some _, _ | _, Some _ -> (None, None)
    | None, None -> (Some (Symtab.create ()), Some (Nlr.Loop_table.create ()))
  in
  let a_n = analyze ?symtab ?loop_table ?memo ?store config normal in
  let a_f = analyze ?symtab ?loop_table ?memo ?store config faulty in
  let jn, jf = Span.with_ "align" (fun () -> Jsm.align a_n.jsm a_f.jsm) in
  let jsm_d = Span.with_ "jsm_d" (fun () -> Jsm.diff a_n.jsm a_f.jsm) in
  let bscore =
    Span.with_ "cluster" @@ fun () ->
    if Jsm.size jsm_d < 2 then 1.0
    else
      let meth = config.Config.linkage in
      let dn = Linkage.cluster meth (Jsm.rows (Jsm.to_distance jn)) in
      let df = Linkage.cluster meth (Jsm.rows (Jsm.to_distance jf)) in
      Bscore.score dn df
  in
  let suspects =
    Array.mapi (fun i l -> (l, Jsm.row_change jsm_d i)) jsm_d.Jsm.labels
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) suspects;
  let members m =
    Array.to_list m |> List.map (fun l -> l)
  in
  let diff_only a b =
    List.filter (fun l -> not (Array.exists (String.equal l) b)) (members a)
  in
  { cmp_config = config;
    normal = a_n;
    faulty = a_f;
    jsm_d;
    bscore;
    suspects;
    only_normal = diff_only a_n.labels a_f.labels;
    only_faulty = diff_only a_f.labels a_n.labels }

let split_label l =
  match String.split_on_char '.' l with
  | [ p ] -> (int_of_string p, 0)
  | [ p; t ] -> (int_of_string p, int_of_string t)
  | _ -> invalid_arg ("Pipeline: bad trace label " ^ l)

let top_processes ?(limit = 6) c =
  let scores = Hashtbl.create 16 in
  Array.iter
    (fun (l, s) ->
      let p, _ = split_label l in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt scores p) in
      if s > cur then Hashtbl.replace scores p s)
    c.suspects;
  Hashtbl.fold (fun p s acc -> (p, s) :: acc) scores []
  |> List.filter (fun (_, s) -> s > 1e-9)
  |> List.sort (fun (pa, a) (pb, b) ->
         match Float.compare b a with 0 -> Int.compare pa pb | x -> x)
  |> List.filteri (fun i _ -> i < limit)
  |> List.map fst

let top_threads ?(limit = 6) c =
  Array.to_list c.suspects
  |> List.filter (fun (l, s) ->
         let _, t = split_label l in
         t >= 1 && s > 1e-9)
  |> List.filteri (fun i _ -> i < limit)
  |> List.map fst

let find_diffnlr c label =
  match (find_nlr c.normal label, find_nlr c.faulty label) with
  | Ok n, Ok f ->
    Ok
      (Span.with_ "diffnlr" (fun () ->
           Diffnlr.make c.normal.symtab ~normal:n ~faulty:f))
  | Error e, _ | _, Error e -> Error e

type triage_entry = { tr_label : string; tr_score : float; tr_truncated : bool }

let triage analysis =
  let j = analysis.jsm in
  let n = Jsm.size j in
  let entries =
    Array.mapi
      (fun i label ->
        let sum = ref 0.0 in
        for k = 0 to n - 1 do
          if k <> i then sum := !sum +. Jsm.get j i k
        done;
        let mean = if n <= 1 then 1.0 else !sum /. float_of_int (n - 1) in
        { tr_label = label;
          tr_score = 1.0 -. mean;
          tr_truncated = snd analysis.nlrs.(i) })
      j.Jsm.labels
  in
  Array.sort
    (fun a b ->
      match Float.compare b.tr_score a.tr_score with
      | 0 -> Bool.compare b.tr_truncated a.tr_truncated
      | c -> c)
    entries;
  entries

let render_triage entries =
  Difftrace_util.Texttable.render
    ~headers:[ "Trace"; "Outlier score"; "Truncated" ]
    (Array.to_list entries
    |> List.map (fun e ->
           [ e.tr_label;
             Printf.sprintf "%.3f" e.tr_score;
             (if e.tr_truncated then "yes" else "") ]))

let dendrogram analysis =
  let dist = Jsm.rows (Jsm.to_distance analysis.jsm) in
  if Array.length dist < 2 then "(fewer than two traces)\n"
  else
    let t = Linkage.cluster analysis.config.Config.linkage dist in
    Difftrace_cluster.Dendrogram.render ~labels:analysis.jsm.Jsm.labels t

let raw_calls analysis (nlr : Nlr.t) =
  Array.to_list
    (Array.map (Symtab.name analysis.symtab)
       (Nlr.expand ~table:analysis.loop_table nlr))

let find_phasediff c label =
  match (find_nlr c.normal label, find_nlr c.faulty label) with
  | Ok (n, _), Ok (f, _) ->
    Ok
      (Span.with_ "phasediff" (fun () ->
           Difftrace_diff.Phasediff.compare
             ~normal:(raw_calls c.normal n)
             ~faulty:(raw_calls c.faulty f)
             ()))
  | Error e, _ | _, Error e -> Error e

module Legacy = struct
  let nlr_of analysis label =
    match find_nlr analysis label with Ok v -> v | Error _ -> raise Not_found

  let diffnlr c label =
    match find_diffnlr c label with Ok d -> d | Error _ -> raise Not_found

  let phasediff c label =
    match find_phasediff c label with Ok p -> p | Error _ -> raise Not_found
end
