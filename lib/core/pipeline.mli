(** The DiffTrace pipeline (paper Fig. 1).

    [analyze] takes one execution's decoded traces through
    decompress → filter → NLR → FCA attributes → formal context →
    concept lattice → JSM. [compare_runs] runs it for a normal and a
    faulty execution against a *shared* symbol table and loop table (so
    L-ids mean the same thing in both), then computes JSM_D, the
    B-score between the two hierarchical clusterings, and the
    suspicious-trace ranking.

    The two hot stages — per-trace NLR summarization and the O(n²)
    JSM — execute under the configuration's {!Engine.t}; parallel
    engines produce byte-identical results to the sequential one.
    Passing a {!Memo.t} additionally caches NLR summaries across calls,
    which is what {!Autotune}'s grid sweep relies on. *)

type analysis = {
  config : Config.t;
  symtab : Difftrace_trace.Symtab.t;  (** shared, unified symbol table *)
  loop_table : Difftrace_nlr.Nlr.Loop_table.t;  (** shared loop table *)
  labels : string array;
  nlrs : (Difftrace_nlr.Nlr.t * bool) array;
      (** per trace: summary + truncation flag, indexed like [labels] *)
  context : Difftrace_fca.Context.t;
  lattice : Difftrace_fca.Lattice.t Lazy.t;
      (** built incrementally (Godin) on demand *)
  jsm : Difftrace_cluster.Jsm.t;
}

(** A failed label lookup: the label that was asked for, plus every
    label the analysis actually has. *)
type lookup_error = { unknown : string; known : string array }

val lookup_error_to_string : lookup_error -> string

(** [analyze ?symtab ?loop_table ?memo ?store config ts] — fresh shared
    tables are created when not supplied. When [memo] is given it
    provides the shared tables itself (passing [?symtab]/[?loop_table]
    too raises [Invalid_argument]) and NLR summaries are looked up in /
    added to its cache. When [store] is given it provides the memo
    (passing [?memo] too raises [Invalid_argument]) {e and} the JSM
    stage reuses/extends cached matrices via {!Store.jsm}; results are
    bit-identical either way. The caller owns {!Store.flush}. *)
val analyze :
  ?symtab:Difftrace_trace.Symtab.t ->
  ?loop_table:Difftrace_nlr.Nlr.Loop_table.t ->
  ?memo:Memo.t ->
  ?store:Store.t ->
  Config.t ->
  Difftrace_trace.Trace_set.t ->
  analysis

(** [find_nlr analysis label] — that trace's summary and truncation
    flag, or a {!lookup_error} listing the known labels. *)
val find_nlr :
  analysis -> string -> (Difftrace_nlr.Nlr.t * bool, lookup_error) result


type comparison = {
  cmp_config : Config.t;
  normal : analysis;
  faulty : analysis;
  jsm_d : Difftrace_cluster.Jsm.t;
  bscore : float;
      (** Fowlkes–Mallows agreement of the two clusterings; low =
          the fault restructured the similarity relation *)
  suspects : (string * float) array;
      (** every common trace with its JSM_D row change, descending *)
  only_normal : string list;  (** labels present only in the normal run *)
  only_faulty : string list;
}

(** [compare_runs ?memo ?store config ~normal ~faulty] — when [memo] is
    given, both analyses share its tables and summary cache (so a
    repeated comparison, or one inside a grid sweep, reuses every
    summary whose filtered input and NLR constants are unchanged).
    [store] does the same with a {!Store}'s memo and additionally
    reuses cached JSM matrices across processes. Results are
    independent of [memo], [store], and the configuration's engine. *)
val compare_runs :
  ?memo:Memo.t ->
  ?store:Store.t ->
  Config.t ->
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  comparison

(** [top_processes ?limit c] — pids ranked by their most-changed
    master/thread row (descending), zero-change pids dropped. *)
val top_processes : ?limit:int -> comparison -> int list

(** [top_threads ?limit c] — worker-thread labels ("p.t", t ≥ 1)
    ranked by row change, zero-change threads dropped. *)
val top_threads : ?limit:int -> comparison -> string list

(** [find_diffnlr c label] — the diffNLR of that thread between the two
    runs (paper Figs. 5–7). *)
val find_diffnlr :
  comparison -> string -> (Difftrace_diff.Diffnlr.t, lookup_error) result


(** {2 Single-run triage}

    §II-A: "many types of faults may be apparent just by analyzing
    JSM_faulty: for instance, processes whose execution got truncated
    will look highly dissimilar to those that terminated normally."
    Triage ranks the traces of a {e single} run by how much they stand
    out from the rest — no reference run required. *)

type triage_entry = {
  tr_label : string;
  tr_score : float;  (** 1 − mean similarity to every other trace *)
  tr_truncated : bool;
}

(** [triage a] — entries sorted by descending outlier score;
    truncated traces break score ties first. *)
val triage : analysis -> triage_entry array

(** [render_triage entries] — a small report table. *)
val render_triage : triage_entry array -> string

(** [dendrogram a] — ASCII dendrogram of the analysis's hierarchical
    clustering (1 − JSM distances, the analysis's linkage method). *)
val dendrogram : analysis -> string

(** [find_phasediff c label] — phase-aware diff of that thread's
    filtered call sequences (phases cut at MPI collectives; see
    {!Difftrace_diff.Phasediff}). *)
val find_phasediff :
  comparison -> string -> (Difftrace_diff.Phasediff.t, lookup_error) result


(** {2 Legacy raising lookups}

    The pre-session raising forms, kept for out-of-tree callers only —
    everything in-tree (CLI, daemon, examples) goes through the
    result-returning {!find_nlr}/{!find_diffnlr}/{!find_phasediff} and
    the {!Session} API. Each raises [Not_found] for unknown labels
    instead of reporting what {e is} known. *)
module Legacy : sig
  val nlr_of : analysis -> string -> Difftrace_nlr.Nlr.t * bool
  [@@ocaml.deprecated "use Pipeline.find_nlr"]

  val diffnlr : comparison -> string -> Difftrace_diff.Diffnlr.t
  [@@ocaml.deprecated "use Pipeline.find_diffnlr"]

  val phasediff : comparison -> string -> Difftrace_diff.Phasediff.t
  [@@ocaml.deprecated "use Pipeline.find_phasediff"]
end
