module Nlr = Difftrace_nlr.Nlr
module Telemetry = Difftrace_obs.Telemetry

(* process-wide telemetry view of every memo instance's traffic *)
let c_hits = Telemetry.Counter.make "memo.hits"
let c_misses = Telemetry.Counter.make "memo.misses"

type stats = { hits : int; misses : int }

type key = string

type t = {
  symtab : Difftrace_trace.Symtab.t;
  loop_table : Nlr.Loop_table.t;
  cache : (key, Nlr.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { symtab = Difftrace_trace.Symtab.create ();
    loop_table = Nlr.Loop_table.create ();
    cache = Hashtbl.create 64;
    hits = 0;
    misses = 0 }

let symtab t = t.symtab
let loop_table t = t.loop_table

let key ~ids ~k ~repeats =
  let buf = Buffer.create ((4 * Array.length ids) + 16) in
  Buffer.add_string buf (string_of_int k);
  Buffer.add_char buf ';';
  Buffer.add_string buf (string_of_int repeats);
  Array.iter
    (fun id ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (string_of_int id))
    ids;
  Digest.string (Buffer.contents buf)

let find t key =
  match Hashtbl.find_opt t.cache key with
  | Some _ as hit ->
    t.hits <- t.hits + 1;
    Telemetry.Counter.incr c_hits;
    hit
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.Counter.incr c_misses;
    None

let add t key nlr = Hashtbl.replace t.cache key nlr

(* persistence hooks for the analysis store: adopt a disk entry
   without disturbing the hit/miss counters, and enumerate the cache
   for rewriting. Keys are exposed as their raw digest bytes. *)
let restore t ~key nlr = Hashtbl.replace t.cache key nlr

let mem t ~key = Hashtbl.mem t.cache key

let fold t ~init ~f = Hashtbl.fold (fun key nlr acc -> f key nlr acc) t.cache init

let length t = Hashtbl.length t.cache

let stats t = { hits = t.hits; misses = t.misses }

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
