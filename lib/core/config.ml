type t = {
  filter : Difftrace_filter.Filter.t;
  attrs : Difftrace_fca.Attributes.spec;
  k : int;
  repeats : int;
  linkage : Difftrace_cluster.Linkage.method_;
  engine : Engine.t;
}

let make ?filter ?attrs ?(k = 10) ?(repeats = 2) ?linkage
    ?(engine = Engine.Sequential) () =
  { filter =
      (match filter with
      | Some f -> f
      | None -> Difftrace_filter.Filter.make [ Difftrace_filter.Filter.Mpi_all ]);
    attrs =
      (match attrs with
      | Some a -> a
      | None ->
        { Difftrace_fca.Attributes.granularity = Difftrace_fca.Attributes.Single;
          freq_mode = Difftrace_fca.Attributes.No_freq });
    k;
    repeats;
    linkage =
      (match linkage with Some l -> l | None -> Difftrace_cluster.Linkage.Ward);
    engine }

let default = make ()

let with_filter filter t = { t with filter }
let with_attrs attrs t = { t with attrs }
let with_k k t = { t with k }
let with_repeats repeats t = { t with repeats }
let with_linkage linkage t = { t with linkage }
let with_engine engine t = { t with engine }

let filter_name t =
  Printf.sprintf "%s.K%d" (Difftrace_filter.Filter.name t.filter) t.k

let attrs_name t = Difftrace_fca.Attributes.name t.attrs

let name t =
  Printf.sprintf "%s / %s / %s" (filter_name t) (attrs_name t)
    (Difftrace_cluster.Linkage.method_name t.linkage)

(* The store's JSM namespace key: everything that shapes attribute
   sets — filter, attrs, K, repeats — and nothing cosmetic (linkage
   reclusters a finished matrix; the engine never changes results).
   Safety does not ride on this digest: reuse is gated per object by
   attribute-set digests, so a collision here merely files two
   configurations' matrices in one namespace. *)
let digest t =
  Digest.string
    (Printf.sprintf "%s\x00%s\x00%d\x00%d" (filter_name t) (attrs_name t) t.k
       t.repeats)

let to_json t =
  let module Json = Difftrace_obs.Telemetry.Json in
  Json.Obj
    [ ("filter", Json.String (Difftrace_filter.Filter.name t.filter));
      ("attrs", Json.String (attrs_name t));
      ("k", Json.Int t.k);
      ("repeats", Json.Int t.repeats);
      ( "linkage",
        Json.String (Difftrace_cluster.Linkage.method_name t.linkage) );
      ("engine", Json.String (Engine.to_string t.engine)) ]
