(* Exact mode is the pinned default: every byte of today's reports.
   Sketch mode swaps the JSM construction for the MinHash/LSH tier —
   same pipeline, candidate-pruned matrix. *)
type mode = Exact | Sketch

let mode_name = function Exact -> "exact" | Sketch -> "sketch"

let mode_of_string = function
  | "exact" -> Exact
  | "sketch" -> Sketch
  | s ->
    invalid_arg
      (Printf.sprintf "unknown similarity mode %S (expected exact or sketch)" s)

type t = {
  filter : Difftrace_filter.Filter.t;
  attrs : Difftrace_fca.Attributes.spec;
  k : int;
  repeats : int;
  linkage : Difftrace_cluster.Linkage.method_;
  engine : Engine.t;
  mode : mode;
}

let make ?filter ?attrs ?(k = 10) ?(repeats = 2) ?linkage
    ?(engine = Engine.Sequential) ?(mode = Exact) () =
  { filter =
      (match filter with
      | Some f -> f
      | None -> Difftrace_filter.Filter.make [ Difftrace_filter.Filter.Mpi_all ]);
    attrs =
      (match attrs with
      | Some a -> a
      | None ->
        { Difftrace_fca.Attributes.granularity = Difftrace_fca.Attributes.Single;
          freq_mode = Difftrace_fca.Attributes.No_freq });
    k;
    repeats;
    linkage =
      (match linkage with Some l -> l | None -> Difftrace_cluster.Linkage.Ward);
    engine;
    mode }

let default = make ()

let with_filter filter t = { t with filter }
let with_attrs attrs t = { t with attrs }
let with_k k t = { t with k }
let with_repeats repeats t = { t with repeats }
let with_linkage linkage t = { t with linkage }
let with_engine engine t = { t with engine }
let with_mode mode t = { t with mode }

let filter_name t =
  Printf.sprintf "%s.K%d" (Difftrace_filter.Filter.name t.filter) t.k

let attrs_name t = Difftrace_fca.Attributes.name t.attrs

(* Exact mode renders exactly as before — its name is pinned all over
   the cram transcripts; only sketch mode announces itself. *)
let name t =
  Printf.sprintf "%s / %s / %s%s" (filter_name t) (attrs_name t)
    (Difftrace_cluster.Linkage.method_name t.linkage)
    (match t.mode with Exact -> "" | Sketch -> " [sketch]")

(* The store's JSM namespace key: everything that shapes attribute
   sets — filter, attrs, K, repeats — and nothing cosmetic (linkage
   reclusters a finished matrix; the engine never changes results).
   Sketch mode appends a marker because a sketch matrix holds 0.0 for
   pruned pairs — a different object from the exact matrix — while
   exact mode keeps the historical digest so existing warm stores stay
   valid. Safety does not ride on this digest: reuse is gated per
   object by attribute-set digests, so a collision here merely files
   two configurations' matrices in one namespace. *)
let digest t =
  Digest.string
    (Printf.sprintf "%s\x00%s\x00%d\x00%d%s" (filter_name t) (attrs_name t)
       t.k t.repeats
       (match t.mode with Exact -> "" | Sketch -> "\x00sketch"))

let to_json t =
  let module Json = Difftrace_obs.Telemetry.Json in
  Json.Obj
    ([ ("filter", Json.String (Difftrace_filter.Filter.name t.filter));
       ("attrs", Json.String (attrs_name t));
       ("k", Json.Int t.k);
       ("repeats", Json.Int t.repeats);
       ( "linkage",
         Json.String (Difftrace_cluster.Linkage.method_name t.linkage) );
       ("engine", Json.String (Engine.to_string t.engine)) ]
    @
    (* emitted only in sketch mode so exact-mode profile JSON keeps its
       historical fields *)
    match t.mode with
    | Exact -> []
    | Sketch -> [ ("mode", Json.String (mode_name t.mode)) ])
