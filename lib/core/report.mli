(** One-shot markdown debugging reports.

    Bundles the whole DiffTrace loop for a (normal, faulty) run pair
    into a single document: runtime diagnostics, configuration search,
    the comparison under the best configuration, the top suspect's
    diffNLR, phase analysis, calling-context deltas and the faulty
    run's stack tree — the artifact a debugging engineer would attach
    to a ticket. *)

type t = {
  markdown : string;
  best_config : Config.t;
  top_suspect : string option;
}

(** [generate ?engine ~fault_label ~normal ~faulty ()] — [fault_label]
    is shown in the header; the outcomes provide traces plus
    diagnostics. [engine] (default sequential) drives the configuration
    search and every comparison; it does not change the report's
    content. *)
val generate :
  ?engine:Engine.t ->
  fault_label:string ->
  normal:Difftrace_simulator.Runtime.outcome ->
  faulty:Difftrace_simulator.Runtime.outcome ->
  unit ->
  t
