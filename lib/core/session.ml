(* The session API — the shared substance of every frontend command.
   See session.mli for the contract; the renderers here are the single
   source of the report formats pinned in test/cli.t and test/serve.t,
   so the one-shot CLI and the daemon cannot drift apart. *)

module Archive = Difftrace_parlot.Archive
module Trace_set = Difftrace_trace.Trace_set
module Runtime = Difftrace_simulator.Runtime
module Progress = Difftrace_temporal.Progress
module Stacktree = Difftrace_stacktree.Stacktree
module Diffnlr = Difftrace_diff.Diffnlr
module Eventdb = Difftrace_eventdb.Eventdb
module Equery = Difftrace_eventdb.Query
module Variational = Difftrace_variational.Variational
module Bitset = Difftrace_util.Bitset
module Frontend = Difftrace_frontend.Frontend
module Frontend_registry = Difftrace_frontend.Registry

type error =
  | Invalid of string
  | Unknown_workload of { name : string; known : string list }
  | Unknown_frontend of { name : string; known : string list }
  | Unknown_run of { name : string; known : string list }
  | Unknown_label of Pipeline.lookup_error
  | Archive_failed of Archive.error
  | Frontend_failed of Frontend.error
  | Store_failed of string
  | Run_failed of string
  | Protocol of string

let error_kind = function
  | Invalid _ -> "invalid-params"
  | Unknown_workload _ -> "unknown-workload"
  | Unknown_frontend _ -> "unknown-frontend"
  | Unknown_run _ -> "unknown-run"
  | Unknown_label _ -> "unknown-label"
  | Archive_failed _ -> "archive-error"
  | Frontend_failed _ -> "frontend-error"
  | Store_failed _ -> "store-error"
  | Run_failed _ -> "run-failed"
  | Protocol _ -> "invalid-request"

let error_to_string = function
  | Invalid m -> m
  | Unknown_workload { name; known } ->
    Printf.sprintf "unknown workload %S (known: %s)" name
      (String.concat ", " known)
  | Unknown_frontend { name; known } ->
    Printf.sprintf "unknown frontend %S (known: %s)" name
      (String.concat ", " known)
  | Unknown_run { name; known } ->
    Printf.sprintf "unknown run %S (registered: %s)" name
      (match known with [] -> "none" | l -> String.concat ", " l)
  | Unknown_label e -> Pipeline.lookup_error_to_string e
  | Archive_failed e -> Archive.error_to_string e
  | Frontend_failed e -> Frontend.error_to_string e
  | Store_failed m -> m
  | Run_failed m -> Printf.sprintf "workload failed: %s" m
  | Protocol m -> m

type t = {
  ses_store : Store.t option;
  ses_memo : Memo.t;
  runs : (string, Trace_set.t) Hashtbl.t;
}

let create ?store () =
  let memo = match store with Some st -> Store.memo st | None -> Memo.create () in
  { ses_store = store; ses_memo = memo; runs = Hashtbl.create 8 }

let store t = t.ses_store
let memo t = t.ses_memo

let flush t =
  match t.ses_store with
  | None -> Ok ()
  | Some st -> (
    match Store.flush st with
    | Ok () -> Ok ()
    | Error e -> Error (Store_failed (Store.error_to_string e)))

type source =
  | Traces of Trace_set.t
  | Archive of { dir : string; salvage : bool }
  | Run of string
  | Ingest of { path : string; frontend : string }

let run_names t =
  Hashtbl.fold (fun k ts acc -> (k, Trace_set.cardinal ts) :: acc) t.runs []
  |> List.sort compare

let archive_runner engine =
  let r = Engine.runner engine in
  { Archive.run = (fun n f -> r.Engine.run n f) }

let frontend_runner engine =
  let r = Engine.runner engine in
  { Frontend.run = (fun n f -> r.Engine.run n f) }

let ingest_source ~engine ~path ~frontend =
  match Frontend_registry.find frontend with
  | None ->
    Error
      (Unknown_frontend { name = frontend; known = Frontend_registry.known () })
  | Some fe -> (
    match Frontend.ingest_file fe ~runner:(frontend_runner engine) path with
    | Ok ts -> Ok (fe, ts)
    | Error e -> Error (Frontend_failed e))

let resolve t ~engine = function
  | Traces ts -> Ok (ts, [])
  | Run name -> (
    match Hashtbl.find_opt t.runs name with
    | Some ts -> Ok (ts, [])
    | None ->
      Error (Unknown_run { name; known = List.map fst (run_names t) }))
  | Archive { dir; salvage } -> (
    match Archive.load ~runner:(archive_runner engine) ~salvage ~dir () with
    | Ok l -> Ok (l.Archive.set, l.Archive.salvaged)
    | Error e -> Error (Archive_failed e))
  | Ingest { path; frontend } -> (
    match ingest_source ~engine ~path ~frontend with
    | Ok (_fe, ts) -> Ok (ts, [])
    | Error e -> Error e)

(* --- record --------------------------------------------------------- *)

type record_request = {
  rc_name : string option;
  rc_dir : string option;
  rc_format : Archive.format;
}

type record_response = {
  rc_files : int;
  rc_traces : int;
  rc_events : int;
  rc_hung : int;
  rc_output : string;
}

let record t ~outcome req =
  if req.rc_name = None && req.rc_dir = None then
    Error (Invalid "record: need a run name and/or an output directory")
  else
    let ts = outcome.Runtime.traces in
    let hung = List.length outcome.Runtime.deadlocked in
    let buf = Buffer.create 128 in
    let archived =
      match req.rc_dir with
      | None -> Ok 0
      | Some dir -> (
        match Archive.save ~format:req.rc_format ~dir ts with
        | n ->
          Buffer.add_string buf
            (Printf.sprintf "archived %d trace files to %s\n" n dir);
          Ok n
        | exception (Invalid_argument m | Sys_error m) ->
          Error (Archive_failed { Archive.err_path = dir; err_reason = m }))
    in
    match archived with
    | Error e -> Error e
    | Ok files -> (
      (* what later requests see is what a separate process would
         load: when the run was archived, re-ingest it through the
         checksummed chunk-at-a-time streaming decoder *)
      let registered =
        match (req.rc_name, req.rc_dir) with
        | None, _ -> Ok ts
        | Some _, None -> Ok ts
        | Some _, Some dir -> (
          match Archive.load ~salvage:false ~dir () with
          | Ok l -> Ok l.Archive.set
          | Error e -> Error (Archive_failed e))
      in
      match registered with
      | Error e -> Error e
      | Ok reg ->
        Option.iter (fun name -> Hashtbl.replace t.runs name reg) req.rc_name;
        if hung > 0 then
          Buffer.add_string buf
            (Printf.sprintf "(the run was HUNG: %d threads truncated)\n" hung);
        Ok
          { rc_files = files;
            rc_traces = Trace_set.cardinal ts;
            rc_events = Trace_set.total_events ts;
            rc_hung = hung;
            rc_output = Buffer.contents buf })

(* --- ingest ---------------------------------------------------------- *)

type ingest_request = {
  ig_path : string;
  ig_frontend : string;
  ig_name : string option;
  ig_dir : string option;
  ig_format : Archive.format;
}

type ingest_response = {
  ig_traces : int;
  ig_events : int;
  ig_files : int;
  ig_digest : string;
  ig_output : string;
}

let ingest t config req =
  let engine = config.Config.engine in
  match
    ingest_source ~engine ~path:req.ig_path ~frontend:req.ig_frontend
  with
  | Error e -> Error e
  | Ok (_fe, ts) -> (
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "ingested %s via %s: %d traces, %d events\n" req.ig_path
         req.ig_frontend (Trace_set.cardinal ts) (Trace_set.total_events ts));
    let archived =
      match req.ig_dir with
      | None -> Ok 0
      | Some dir -> (
        match Archive.save ~format:req.ig_format ~dir ts with
        | n ->
          Buffer.add_string buf
            (Printf.sprintf "archived %d trace files to %s\n" n dir);
          Ok n
        | exception (Invalid_argument m | Sys_error m) ->
          Error (Archive_failed { Archive.err_path = dir; err_reason = m }))
    in
    match archived with
    | Error e -> Error e
    | Ok files ->
      Option.iter (fun name -> Hashtbl.replace t.runs name ts) req.ig_name;
      Ok
        { ig_traces = Trace_set.cardinal ts;
          ig_events = Trace_set.total_events ts;
          ig_files = files;
          ig_digest = Frontend.digest ts;
          ig_output = Buffer.contents buf })

(* --- compare / analyze ---------------------------------------------- *)

type compare_request = {
  cp_normal : source;
  cp_faulty : source;
  cp_diffnlr : string option;
}

type compare_response = {
  cp_bscore : float;
  cp_top_processes : int list;
  cp_top_threads : string list;
  cp_suspects : (string * float) array;
  cp_salvaged : Archive.salvage list;
  cp_comparison : Pipeline.comparison;
  cp_output : string;
}

let render_salvage buf salvaged =
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "salvaged trace %d.%d: %d events recovered, %d bytes dropped (%s)\n"
           s.Archive.sv_pid s.Archive.sv_tid s.Archive.sv_events
           s.Archive.sv_dropped_bytes s.Archive.sv_reason))
    salvaged

let render_suspects buf (c : Pipeline.comparison) =
  Buffer.add_string buf "suspicious traces:\n";
  Array.iteri
    (fun i (l, s) ->
      if i < 8 && s > 1e-9 then
        Buffer.add_string buf (Printf.sprintf "  %-6s %.3f\n" l s))
    c.Pipeline.suspects

(* the diffNLR section shared by the compare and analyze renderings;
   [Ok None] = the runs have no trace in common. The event-DB footer
   pins the suspect to a raw-event position so a ranked suspect is one
   [difftrace query] away from its events. *)
let diffnlr_section ~normal ~faulty (c : Pipeline.comparison) diffnlr =
  match (diffnlr, c.Pipeline.suspects) with
  | None, [||] -> Ok None
  | _ -> (
    let target =
      match diffnlr with Some l -> l | None -> fst c.Pipeline.suspects.(0)
    in
    match Pipeline.find_diffnlr c target with
    | Ok d ->
      let note =
        Option.value ~default:""
          (Eventdb.divergence_note ~normal ~faulty ~label:target)
      in
      Ok
        (Some
           (Diffnlr.render ~title:(Printf.sprintf "diffNLR(%s)" target) d
           ^ note))
    | Error e -> Error (Unknown_label e))

let compare_common ~style t config req =
  let engine = config.Config.engine in
  match resolve t ~engine req.cp_normal with
  | Error e -> Error e
  | Ok (normal, sv_n) -> (
    match resolve t ~engine req.cp_faulty with
    | Error e -> Error e
    | Ok (faulty, sv_f) -> (
      let c =
        match t.ses_store with
        | Some st -> Pipeline.compare_runs ~store:st config ~normal ~faulty
        | None -> Pipeline.compare_runs ~memo:t.ses_memo config ~normal ~faulty
      in
      match diffnlr_section ~normal ~faulty c req.cp_diffnlr with
      | Error e -> Error e
      | Ok diff -> (
        let salvaged = sv_n @ sv_f in
        let buf = Buffer.create 512 in
        (match style with
        | `Analyze -> render_salvage buf salvaged
        | `Compare -> ());
        Buffer.add_string buf
          (Printf.sprintf "configuration: %s\n" (Config.name config));
        Buffer.add_string buf
          (Printf.sprintf "B-score: %.3f\n" c.Pipeline.bscore);
        (match style with
        | `Compare ->
          Buffer.add_string buf
            (Printf.sprintf "top processes: %s\n"
               (String.concat ", "
                  (List.map string_of_int (Pipeline.top_processes c))));
          Buffer.add_string buf
            (Printf.sprintf "top threads:   %s\n"
               (String.concat ", " (Pipeline.top_threads c)))
        | `Analyze -> ());
        render_suspects buf c;
        (match diff with
        | None ->
          Buffer.add_string buf "  (none: the runs have no trace in common)\n"
        | Some d -> Buffer.add_string buf d);
        Ok
          { cp_bscore = c.Pipeline.bscore;
            cp_top_processes = Pipeline.top_processes c;
            cp_top_threads = Pipeline.top_threads c;
            cp_suspects = c.Pipeline.suspects;
            cp_salvaged = salvaged;
            cp_comparison = c;
            cp_output = Buffer.contents buf })))

let compare t config req = compare_common ~style:`Compare t config req
let analyze t config req = compare_common ~style:`Analyze t config req

(* --- triage ---------------------------------------------------------- *)

type triage_request = { tg_subject : source; tg_limit : int }

type triage_response = {
  tg_entries : Pipeline.triage_entry array;
  tg_output : string;
}

let triage ?outcome t config req =
  match resolve t ~engine:config.Config.engine req.tg_subject with
  | Error e -> Error e
  | Ok (ts, _salvaged) ->
    let a =
      match t.ses_store with
      | Some st -> Pipeline.analyze ~store:st config ts
      | None -> Pipeline.analyze ~memo:t.ses_memo config ts
    in
    let entries = Pipeline.triage a in
    let limit = max 0 req.tg_limit in
    let buf = Buffer.create 512 in
    (match outcome with
    | Some o when o.Runtime.deadlocked <> [] ->
      Buffer.add_string buf
        (Printf.sprintf "run is HUNG: %d threads never terminated\n"
           (List.length o.Runtime.deadlocked))
    | _ -> ());
    Buffer.add_string buf "JSM outliers (most dissimilar traces of this run):\n";
    Buffer.add_string buf
      (Pipeline.render_triage
         (Array.sub entries 0 (min limit (Array.length entries))));
    (match outcome with
    | Some o ->
      Buffer.add_string buf "least-progressed threads (logical clocks):\n";
      Buffer.add_string buf
        (Progress.render
           (List.filteri (fun i _ -> i < limit) (Progress.least_progressed o)))
    | None -> ());
    Buffer.add_string buf "dendrogram:\n";
    Buffer.add_string buf (Pipeline.dendrogram a);
    Buffer.add_string buf "STAT-style stack tree (where is everyone now):\n";
    Buffer.add_string buf (Stacktree.render (Stacktree.build ts));
    Ok { tg_entries = entries; tg_output = Buffer.contents buf }

(* --- query ----------------------------------------------------------- *)

type query_request = {
  qy_text : string;
  qy_source : source;
  qy_against : source option;
}

type query_response = {
  qy_kind : string;
  qy_size : int;
  qy_warm : bool;
  qy_output : string;
}

let eventdb_runner engine =
  let r = Engine.runner engine in
  { Eventdb.run = (fun n f -> r.Engine.run n f) }

(* indexes persist under the session store so warm reruns skip the
   build; storeless sessions just build in memory *)
let eventdb_dir t =
  Option.map (fun st -> Filename.concat (Store.dir st) "eventdb") t.ses_store

let db_labels (db : Eventdb.t) =
  Array.map Eventdb.label db.Eventdb.db_threads

let query t config req =
  match Equery.parse req.qy_text with
  | Error m -> Error (Invalid (Printf.sprintf "query: %s" m))
  | Ok q -> (
    if Equery.needs_against q && req.qy_against = None then
      Error
        (Invalid
           "query: this query compares two runs; provide a second source \
            (--against)")
    else
      let engine = config.Config.engine in
      let open_db source =
        match resolve t ~engine source with
        | Error e -> Error e
        | Ok (ts, _salvaged) ->
          Ok (Eventdb.open_ ~runner:(eventdb_runner engine) ?dir:(eventdb_dir t) ts)
      in
      match open_db req.qy_source with
      | Error e -> Error e
      | Ok (db, how) -> (
        let against =
          match req.qy_against with
          | None -> Ok None
          | Some s -> (
            match open_db s with
            | Error e -> Error e
            | Ok (adb, ahow) -> Ok (Some (adb, ahow)))
        in
        match against with
        | Error e -> Error e
        | Ok against -> (
          let adb = Option.map fst against in
          let warm =
            how = `Loaded
            && (match against with None -> true | Some (_, h) -> h = `Loaded)
          in
          match Equery.eval db ?against:adb q with
          | Error (Equery.Unknown_thread l) ->
            let known =
              match adb with
              | None -> db_labels db
              | Some a -> Array.append (db_labels db) (db_labels a)
            in
            Error (Unknown_label { Pipeline.unknown = l; known })
          | Error (Equery.Unknown_loop l) ->
            Error
              (Invalid
                 (Printf.sprintf
                    "query: unknown loop %s (the database has %d loop \
                     bodies; see 'loops')"
                    l
                    (Difftrace_nlr.Nlr.Loop_table.size db.Eventdb.db_table)))
          | Error Equery.Needs_against ->
            Error (Invalid ("query: " ^ Equery.error_to_string Equery.Needs_against))
          | Ok r ->
            Ok
              { qy_kind = Equery.kind r;
                qy_size = Equery.size r;
                qy_warm = warm;
                qy_output = Equery.render r })))

(* --- vdiff ------------------------------------------------------------ *)

type vdiff_run = {
  vdr_name : string;
  vdr_source : source;
  vdr_axes : (string * string) list;
  vdr_bad : bool;
}

type vdiff_request = {
  vd_runs : vdiff_run list;
  vd_trace : string option;
}

type vdiff_response = {
  vd_nruns : int;
  vd_columns : int;
  vd_regions : int;
  vd_warm : bool;
  vd_condition : string option;
  vd_output : string;
}

(* the store key for a merged alignment: a digest over the aligned
   label and every run's element sequence in run order. Sequences are
   length-prefixed so no two distinct run sets concatenate to the same
   bytes. The merge is a pure function of exactly these inputs (names,
   axes and verdicts only annotate the result), so equal keys mean the
   persisted columns replay bit-identically. *)
let vdiff_key ~label runs =
  let b = Buffer.create 256 in
  Buffer.add_string b "difftrace-vdiff 1\n";
  Buffer.add_string b (Printf.sprintf "%d %s\n" (List.length runs) label);
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%d\n" (List.length r.Variational.vr_elems));
      List.iter
        (fun e -> Buffer.add_string b (Printf.sprintf "%d:%s" (String.length e) e))
        r.Variational.vr_elems)
    runs;
  Digest.string (Buffer.contents b)

(* per-suspect event-DB footer: pin the region to the first raw-event
   divergence between a run that lacks it and one that has it, so a
   conditioned suspect is one [difftrace query] away from its events *)
let vdiff_footers ~label ~trace_sets sps =
  let buf = Buffer.create 128 in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (sp : Variational.suspect) ->
      let pres = sp.Variational.sp_region.Variational.rg_present in
      let first_where p =
        let n = Array.length trace_sets in
        let rec go i = if i >= n then None else if p i then Some i else go (i + 1) in
        go 0
      in
      match
        ( first_where (fun i -> not (Bitset.mem pres i)),
          first_where (fun i -> Bitset.mem pres i) )
      with
      | Some without, Some with_ ->
        (* orient so "normal" is the region's good side: a [Present]
           suspect tracks the bad runs, so the run with the region is
           the faulty one; an [Absent] suspect is the reverse *)
        let normal_i, faulty_i =
          match sp.Variational.sp_polarity with
          | Variational.Present -> (without, with_)
          | Variational.Absent -> (with_, without)
        in
        Option.iter
          (fun note ->
            if not (Hashtbl.mem seen note) then begin
              Hashtbl.replace seen note ();
              Buffer.add_string buf note
            end)
          (Eventdb.divergence_note ~normal:trace_sets.(normal_i)
             ~faulty:trace_sets.(faulty_i) ~label)
      | _ -> ())
    sps;
  Buffer.contents buf

let vdiff t config req =
  let n = List.length req.vd_runs in
  if n < 2 then
    Error (Invalid "vdiff: need at least two runs to align")
  else
    let engine = config.Config.engine in
    (* resolve + analyze every run against the session's shared tables
       (the store's memo when there is one), so NLR element strings
       mean the same thing across runs *)
    let rec gather acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest -> (
        match resolve t ~engine r.vdr_source with
        | Error e -> Error e
        | Ok (ts, _salvaged) ->
          let a =
            match t.ses_store with
            | Some st -> Pipeline.analyze ~store:st config ts
            | None -> Pipeline.analyze ~memo:t.ses_memo config ts
          in
          gather ((r, ts, a) :: acc) rest)
    in
    match gather [] req.vd_runs with
    | Error e -> Error e
    | Ok resolved -> (
      (* the trace to align: the request's, or the first label (in run
         0's order) common to every run *)
      let label_of =
        match req.vd_trace with
        | Some l -> Ok l
        | None -> (
          let _, _, a0 = List.hd resolved in
          let common l =
            List.for_all
              (fun (_, _, a) -> Array.exists (String.equal l) a.Pipeline.labels)
              resolved
          in
          match Array.find_opt common a0.Pipeline.labels with
          | Some l -> Ok l
          | None -> Error (Invalid "vdiff: the runs have no trace in common"))
      in
      match label_of with
      | Error e -> Error e
      | Ok label -> (
        let nlr_of (_, _, a) =
          match Pipeline.find_nlr a label with
          | Ok (nlr, _truncated) ->
            Ok (Difftrace_nlr.Nlr.to_strings a.Pipeline.symtab nlr)
          | Error e -> Error (Unknown_label e)
        in
        let rec elems acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest -> (
            match nlr_of r with
            | Error e -> Error e
            | Ok es -> elems (es :: acc) rest)
        in
        match elems [] resolved with
        | Error e -> Error e
        | Ok elem_lists ->
          let runs =
            List.map2
              (fun (r, _, _) es ->
                { Variational.vr_name = r.vdr_name;
                  vr_elems = es;
                  vr_axes = r.vdr_axes;
                  vr_bad = r.vdr_bad })
              resolved elem_lists
          in
          let key = vdiff_key ~label runs in
          (* warm path: replay the persisted alignment instead of
             re-running the k-way merge *)
          let v, warm =
            match
              Option.bind t.ses_store (fun st -> Store.find_vdiff st ~key)
            with
            | Some cols -> (
              match Variational.of_columns runs cols with
              | v -> (v, true)
              | exception Invalid_argument _ ->
                (* a damaged record: fall back to a fresh merge *)
                (Variational.merge runs, false))
            | None ->
              let v = Variational.merge runs in
              Option.iter
                (fun st ->
                  Store.add_vdiff st ~key ~nruns:n (Variational.columns_repr v))
                t.ses_store;
              (v, false)
          in
          let trace_sets =
            Array.of_list (List.map (fun (_, ts, _) -> ts) resolved)
          in
          let sps = Variational.suspects v in
          let buf = Buffer.create 1024 in
          Buffer.add_string buf
            (Variational.render
               ~title:(Printf.sprintf "variational NLR(%s): %d runs" label n)
               v);
          Buffer.add_string buf (vdiff_footers ~label ~trace_sets sps);
          Ok
            { vd_nruns = n;
              vd_columns = Array.length v.Variational.columns;
              vd_regions = List.length (Variational.regions v);
              vd_warm = warm;
              vd_condition =
                Option.map Variational.condition_to_string
                  (Variational.discriminating v);
              vd_output = Buffer.contents buf }))

(* --- status ---------------------------------------------------------- *)

type status = {
  st_runs : (string * int) list;
  st_summaries : int;
  st_memo : Memo.stats;
  st_store : Store.stats option;
  st_output : string;
}

let status t =
  let runs = run_names t in
  let stats = Memo.stats t.ses_memo in
  let store_stats = Option.map Store.stats t.ses_store in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "runs: %s\n"
       (match runs with
       | [] -> "(none)"
       | l ->
         String.concat ", "
           (List.map (fun (n, c) -> Printf.sprintf "%s (%d traces)" n c) l)));
  Buffer.add_string buf
    (Printf.sprintf "memo: %d summaries, %d hits, %d misses\n"
       (Memo.length t.ses_memo) stats.Memo.hits stats.Memo.misses);
  (match (t.ses_store, store_stats) with
  | Some st, Some s ->
    Buffer.add_string buf
      (Printf.sprintf "store: %s — %d summaries, %d matrices\n" (Store.dir st)
         s.Store.summaries s.Store.matrices)
  | _ -> Buffer.add_string buf "store: (none)\n");
  { st_runs = runs;
    st_summaries = Memo.length t.ses_memo;
    st_memo = stats;
    st_store = store_stats;
    st_output = Buffer.contents buf }
