(** Execution engines for the analysis pipeline.

    The two hot stages of {!Pipeline.analyze} — per-trace NLR
    summarization and the O(n²) pairwise Jaccard similarity matrix —
    are embarrassingly parallel. An engine decides how their
    independent work items are executed: [Sequential] runs them in
    order on the calling domain; [Parallel] fans them out over OCaml 5
    domains with a work-stealing chunked scheduler.

    Determinism contract: for a pure per-index function [f],
    [init engine n f] returns exactly [Array.init n f] under every
    engine — results land in their own slot, so scheduling order is
    invisible. The pipeline relies on this to make parallel analyses
    byte-identical to sequential ones. *)

type t =
  | Sequential
  | Parallel of { domains : int }  (** total domains, including the caller *)

val sequential : t

(** [parallel ?domains ()] — [domains] defaults to
    {!Domain.recommended_domain_count} (capped at 16). Raises
    [Invalid_argument] if [domains < 1]; [Parallel {domains = 1}]
    degrades to sequential execution. *)
val parallel : ?domains:int -> unit -> t

(** [of_jobs n] — the CLI's [--jobs] semantics: [1] is [Sequential],
    [n > 1] is [Parallel {domains = n}], and [n <= 0] auto-detects like
    {!parallel}. *)
val of_jobs : int -> t

(** [domains t] — 1 for [Sequential]. *)
val domains : t -> int

(** ["sequential"] or ["parallel:N"]. *)
val to_string : t -> string

(** Accepts ["sequential"]/["seq"], ["parallel"]/["par"] (auto domain
    count) and ["parallel:N"]/["par:N"]. Raises [Invalid_argument] on
    anything else. *)
val of_string : string -> t

(** [init t n f] = [Array.init n f], scheduled by the engine. [f] must
    be safe to call from any domain and, for determinism, should not
    depend on evaluation order. If [f] raises, the first (lowest-index)
    exception is re-raised after all workers drain. *)
val init : t -> int -> (int -> 'a) -> 'a array

(** [map t f arr] = [Array.map f arr], scheduled by the engine. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** The engine as a first-class polymorphic record — the shape
    libraries below the core (archive loads, campaign cells) accept so
    they can fan independent work over an engine without depending on
    this module's type. Same contract as {!init}. *)
type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

(** [runner t] — [{ run = init t }]. *)
val runner : t -> runner
