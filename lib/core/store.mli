(** Persistent, content-addressed analysis store.

    {!Memo} (PR 1) amortizes NLR summarization {e within} one process;
    every CLI invocation still starts cold. The store extends that
    across processes: a single on-disk file persists the memo's shared
    symbol/loop tables, its cached summaries, and completed JSM
    matrices, so the second [difftrace compare] over the same corpus
    performs zero summarizations and mirrors (almost) every Jaccard
    cell from disk — near-pure I/O instead of O(n²) recompute.

    {2 Correctness model}

    Nothing read from the store is trusted positionally; everything is
    content-addressed:

    - Summaries are keyed by {!Memo.key} — a digest of the filtered,
      symtab-remapped call-ID sequence plus the NLR constants. Keys are
      IDs {e with respect to the store's own persisted symbol table},
      which the loader replays in creation order, so equal keys mean
      equal name sequences; there are no cross-workload collisions.
    - Cached JSM matrices carry one digest per object over its {e
      sorted} attribute-name set. A cached cell is mirrored only when
      both endpoints' digests match the current context, and
      [Context.jaccard] is a pure function of those two attribute sets
      — so mirrored values are bit-identical to recomputation
      ({!Jsm.extend}'s contract). Matrices are namespaced by
      {!Config.digest} purely for lookup efficiency.
    - MinHash signatures ({!Difftrace_cluster.Sketch}) are keyed by the
      same per-object attribute digests; a signature is a pure function
      of the attribute-name set the digest certifies, so a hit is
      bit-identical to recomputation, and sketch-mode matrix extension
      inherits the exact tier's reuse guarantee (candidacy is pairwise
      in the two signatures). Exact-mode runs never write or read
      signature records, so existing store files keep their historical
      byte layout.

    - Merged variational alignments ({!Difftrace_variational}) are
      keyed by a digest over the aligned runs' element sequences in run
      order; a hit replays the persisted column/presence sequence and
      skips the whole progressive re-alignment. Stores that never
      served a vdiff hold no such records, keeping the historical byte
      layout.

    Robustness follows {!Archive}/{!Campaign} discipline: CRC-32/varint
    record framing, atomic rewrite (tmp + rename), and a
    result-returning loader that salvages the valid prefix of a damaged
    file — or falls back to a cold store — instead of raising.

    Telemetry: [store.hits]/[store.misses] (JSM base lookups),
    [store.sig_hits]/[store.sig_misses] (signature lookups, sketch mode
    only), [store.vdiff_hits]/[store.vdiff_misses] (variational
    alignment lookups), [store.evictions] (gc and flush caps),
    [store.crc_fail] (damaged files/records encountered). *)

type t

type error

val error_to_string : error -> string

(** [load ~dir] — open (or cold-start) the store rooted at [dir]. A
    missing directory or store file is a normal cold start; a damaged
    file is salvaged up to its first bad record (counting
    [store.crc_fail]); only a genuinely unusable path (e.g. [dir] is a
    regular file, or the store file is unreadable) is an [Error]. Never
    raises on file content. *)
val load : dir:string -> (t, error) result

(** The directory the store was loaded from. *)
val dir : t -> string

(** The store's memo, seeded with every persisted summary. Pass it to
    the pipeline as the shared memo; new summaries accumulate in it and
    are persisted by the next {!flush}. *)
val memo : t -> Memo.t

(** [jsm t ~config ~init ctx] — the context's JSM, reusing cached work:
    picks the cached matrix (in [config]'s namespace) sharing the most
    (label, attribute-digest) pairs with [ctx], mirrors those cells via
    {!Jsm.extend}, and evaluates the rest. Falls back to {!Jsm.compute}
    when nothing is reusable. Bit-identical to [Jsm.compute ~init ctx]
    either way. In sketch mode ([config.mode = Sketch]) the same
    machinery runs over {!Jsm.compute_sketch}/{!Jsm.extend_sketch} with
    per-object signatures looked up from — or computed into — the
    store ([store.sig_hits]/[store.sig_misses]); sketch matrices live
    in their own {!Config.digest} namespace. Counts [store.hits] /
    [store.misses] once per call, and records the finished matrix for
    future runs (unless a cached matrix already covered every
    object). *)
val jsm :
  t ->
  config:Config.t ->
  init:(int -> (int -> float array) -> float array array) ->
  Difftrace_fca.Context.t ->
  Difftrace_cluster.Jsm.t

(** [flush t] — persist new state (atomic rewrite). A no-op when
    nothing changed since {!load}/the last flush, so warm runs do not
    touch the disk. Applies the default retention caps, counting
    [store.evictions]. Creates [dir] if needed. *)
val flush : t -> (unit, error) result

type stats = {
  summaries : int;
  matrices : int;
  signatures : int;
  vdiffs : int;  (** persisted variational alignments *)
  symbols : int;
  loop_bodies : int;
  file_bytes : int;  (** store file size on disk; 0 before first flush *)
  salvaged : bool;  (** the last {!load} discarded damaged records *)
}

val stats : t -> stats

(** Text rendering of {!stats} for [difftrace store stats]. *)
val render_stats : stats -> string

(** [gc ?keep_summaries ?keep_matrices ?keep_signatures ?keep_vdiffs t]
    — drop all but the newest [keep_summaries] summaries (default
    4096), [keep_matrices] matrices (default 64), [keep_signatures]
    MinHash signatures (default 4096) and [keep_vdiffs] variational
    alignments (default 64); ties resolve by key so the outcome is
    deterministic. Signatures and vdiffs participate in the same
    stamp-ordered aging as everything else, so a sketch- or
    vdiff-heavy store cannot grow unbounded. Returns
    [(summaries_dropped, matrices_dropped, signatures_dropped,
    vdiffs_dropped)], also counted into [store.evictions]. Takes
    effect on disk at the next {!flush}. Shared symbol/loop tables are
    never shrunk — live summaries index into them. *)
val gc :
  ?keep_summaries:int ->
  ?keep_matrices:int ->
  ?keep_signatures:int ->
  ?keep_vdiffs:int ->
  t ->
  int * int * int * int

(** [find_vdiff t ~key] — the persisted variational alignment keyed by
    [key] (a digest over the aligned runs' element sequences, in run
    order — see {!Session.vdiff}), as the column/presence
    representation accepted by [Variational.of_columns]. A hit counts
    [store.vdiff_hits] and lets the caller skip the whole k-way
    progressive re-alignment; a miss counts [store.vdiff_misses]. *)
val find_vdiff : t -> key:string -> (string * int list) array option

(** [add_vdiff t ~key ~nruns cols] — record a merged alignment over
    [nruns] runs for future {!find_vdiff} lookups; persisted at the
    next {!flush}. Replaces any previous entry under [key]. *)
val add_vdiff : t -> key:string -> nruns:int -> (string * int list) array -> unit

type check = {
  c_records : int;
  c_summaries : int;
  c_matrices : int;
  c_signatures : int;
  c_vdiffs : int;
  c_symbols : int;
  c_loop_bodies : int;
  c_bytes : int;
  c_damage : string option;  (** [None] when the whole file verifies *)
}

(** [verify ~dir] — read-only integrity scan (CRCs, framing, structural
    references) without adopting anything; [Ok] with [c_damage = Some _]
    means a salvageable file. [Error] only for an unreadable path. *)
val verify : dir:string -> (check, error) result

(** Text rendering of {!check} for [difftrace store verify]. *)
val render_check : check -> string
