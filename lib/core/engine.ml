module Telemetry = Difftrace_obs.Telemetry

type t = Sequential | Parallel of { domains : int }

let sequential = Sequential

let auto_domains () = max 1 (min 16 (Domain.recommended_domain_count ()))

let parallel ?domains () =
  let domains = match domains with Some d -> d | None -> auto_domains () in
  if domains < 1 then invalid_arg "Engine.parallel: domains must be >= 1";
  Parallel { domains }

let of_jobs n =
  if n = 1 then Sequential
  else if n <= 0 then parallel ()
  else Parallel { domains = n }

let domains = function Sequential -> 1 | Parallel { domains } -> domains

let to_string = function
  | Sequential -> "sequential"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains

let of_string s =
  match String.lowercase_ascii s with
  | "sequential" | "seq" -> Sequential
  | "parallel" | "par" -> parallel ()
  | s -> (
    let parse prefix =
      let p = prefix ^ ":" in
      let pl = String.length p in
      if String.length s > pl && String.sub s 0 pl = p then
        int_of_string_opt (String.sub s pl (String.length s - pl))
      else None
    in
    match parse "parallel" with
    | Some n when n >= 1 -> Parallel { domains = n }
    | _ -> (
      match parse "par" with
      | Some n when n >= 1 -> Parallel { domains = n }
      | _ -> invalid_arg ("Engine.of_string: " ^ s)))

(* Work-stealing chunked map: a mutex-protected cursor hands out chunks
   of indices; every domain (the caller included) loops claiming the
   next chunk until the range is exhausted. Each result is written to
   its own slot, so the output is independent of the schedule. *)
let chunked_init ~domains n f =
  let results = Array.make n None in
  let cursor = ref 0 in
  let mu = Mutex.create () in
  (* small chunks relative to n/domains so an unlucky domain stuck on a
     heavy item does not serialize the tail *)
  let chunk = max 1 (1 + ((n - 1) / (domains * 8))) in
  let claim () =
    Mutex.lock mu;
    let start = !cursor in
    cursor := start + chunk;
    Mutex.unlock mu;
    start
  in
  (* the span is anchored at the root so the caller's share and every
     helper domain's share aggregate under one "engine.worker" path *)
  let worker () =
    Telemetry.Span.with_root "engine.worker" (fun () ->
        let running = ref true in
        while !running do
          let start = claim () in
          if start >= n then running := false
          else
            for i = start to min n (start + chunk) - 1 do
              results.(i) <-
                Some
                  (match f i with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ()))
            done
        done)
  in
  let helpers =
    List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let init t n f =
  if n < 0 then invalid_arg "Engine.init";
  match t with
  | Sequential -> Array.init n f
  | Parallel { domains } ->
    if domains <= 1 || n <= 1 then Array.init n f
    else chunked_init ~domains n f

let map t f arr = init t (Array.length arr) (fun i -> f arr.(i))

type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

let runner t = { run = (fun n f -> init t n f) }
