(** Pipeline-wide telemetry: hierarchical timing spans, named counters
    and pluggable sinks.

    Everything is {e off by default}: until {!enable} installs a sink,
    an instrumented call site costs a single atomic load and a branch,
    so the hot kernels (JSM cells, NLR summarization, LZW capture) can
    stay instrumented permanently. Enabling records into a process-wide
    aggregation table that is safe to touch from every domain the
    parallel engine spawns.

    {b Determinism.} Span wall-clock and allocation numbers are
    measurements and vary run to run. Counters count {e logical} work
    (cache probes, JSM cells, lattice closures, captured events), are
    incremented atomically, and therefore total identically under
    [Engine.Sequential] and [Engine.Parallel] — that invariant is what
    makes profile JSON files comparable across commits and hosts. *)

(** Minimal JSON values: enough to print and re-parse the telemetry
    and bench report schemas without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** Compact single-line rendering. *)
  val to_string : t -> string

  (** Two-space indented rendering (one element per line), newline
      terminated — the format written to [--profile-json] and bench
      artifact files. *)
  val to_string_pretty : t -> string

  exception Parse_error of string

  (** Parse a JSON document produced by {!to_string} /
      {!to_string_pretty}.
      @raise Parse_error on malformed input. *)
  val of_string : string -> t

  (** [member k (Obj kvs)] — the value bound to [k], if any. *)
  val member : string -> t -> t option

  val to_int : t -> int option
  val to_str : t -> string option
end

(** Where closed spans are delivered. [Recording] aggregates per path
    (the default, queried via {!report}); [Printer] writes one line per
    span close (a debug trace); [Custom] calls back. Counters are
    pull-based and only surface in {!report}. *)
type sink =
  | Recording
  | Printer of out_channel
  | Custom of (path:string -> wall_ns:int -> alloc_bytes:int -> unit)

(** [enable ?sinks ()] resets all recorded state and turns telemetry
    on. [sinks] defaults to [[Recording]].
    @raise Invalid_argument if [sinks] is empty. *)
val enable : ?sinks:sink list -> unit -> unit

(** Turn telemetry off; instrumented code reverts to the almost-free
    path. Recorded data survives until the next [enable]. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Clear every span aggregate and zero every counter. *)
val reset : unit -> unit

(** [set_clock (Some f)] substitutes the wall clock (seconds) — used
    by tests for deterministic spans; [None] restores the default
    ([Unix.gettimeofday]). *)
val set_clock : (unit -> float) option -> unit

(** Spans measure allocation via [Gc.allocated_bytes] deltas by
    default; [set_track_alloc false] turns that sampling off. *)
val set_track_alloc : bool -> unit

(** Named monotonically-increasing counters. *)
module Counter : sig
  type t

  (** [make name] — create or look up the process-wide counter
      [name]. Intended for top-level [let] bindings at the
      instrumentation site. *)
  val make : string -> t

  (** [add c n] — add [n] when telemetry is enabled; a no-op (one
      atomic load) otherwise. *)
  val add : t -> int -> unit

  val incr : t -> unit
  val name : t -> string
  val value : t -> int
end

(** Hierarchical timing spans. *)
module Span : sig
  (** [with_ name f] runs [f] inside a span. The span's path is the
      slash-joined chain of the enclosing spans on the current domain
      ("compare_runs/analyze/summarize"); equal paths aggregate. When
      telemetry is disabled this is exactly [f ()] plus one branch. *)
  val with_ : string -> (unit -> 'a) -> 'a

  (** [with_root name f] — like {!with_}, but anchored at the path
      root regardless of enclosing spans. Used for work scheduled onto
      engine domains, so every domain's share of e.g. ["engine.worker"]
      lands under one path no matter where it was spawned from. *)
  val with_root : string -> (unit -> 'a) -> 'a

  (** The current domain's innermost open span path, if any. *)
  val current_path : unit -> string option
end

(** One aggregated span: total wall nanoseconds, total GC-allocated
    bytes and the number of times the path closed. *)
type span = { path : string; count : int; wall_ns : int; alloc_bytes : int }

(** A snapshot: spans sorted by path, nonzero counters sorted by
    name — both orders deterministic. *)
type report = { spans : span list; counters : (string * int) list }

val report : unit -> report

(** ["difftrace-telemetry/1"] — bumped on any incompatible schema
    change. *)
val schema_version : string

(** The report as a {!Json.t} (schema documented in MANUAL.md). *)
val report_to_json : report -> Json.t

(** Pretty-printed JSON document of {!report_to_json}. *)
val to_json : report -> string

(** Inverse of {!to_json} / {!report_to_json}; validates the schema
    tag.
    @raise Json.Parse_error on malformed or incompatible input. *)
val report_of_json : string -> report

val report_of_json_value : Json.t -> report

(** Render the per-stage table and counter table (Texttable). *)
val render : report -> string
