(* Pipeline-wide telemetry: hierarchical timing spans, named counters
   and pluggable sinks.

   The whole module is off by default: instrumented code pays one
   atomic load (and a branch) per span or counter touch until a sink
   is installed, so the hot kernels can stay instrumented permanently.
   When recording, spans aggregate under their slash-joined path
   ("compare_runs/analyze/summarize") into a mutex-protected table, so
   domains spawned by the parallel engine can record concurrently;
   counters are plain atomics and therefore aggregate deterministically
   no matter how the engine schedules the work. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON — printing and (for round-tripping reports) parsing.  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* floats print with enough digits to round-trip exactly, but drop
     the trailing noise of shorter decimals ("0.5" stays "0.5") *)
  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* pretty variant used for files meant to be read (and diffed) by
     humans as well as CI: one object per line inside arrays *)
  let rec write_pretty buf indent = function
    | List (_ :: _ as xs) ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
    | Obj (_ :: _ as kvs) when indent = 0 ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf "  \"";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf 2 v)
        kvs;
      Buffer.add_string buf "\n}"
    | t -> write buf t

  let to_string_pretty t =
    let buf = Buffer.create 1024 in
    write_pretty buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  exception Parse_error of string

  (* a small recursive-descent parser; covers everything [write]
     emits (which is all this module ever needs to read back) *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("bad literal " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code = int_of_string ("0x" ^ hex) in
            (* reports only ever escape control characters, so a raw
               byte is a faithful decoding here *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else fail "non-latin \\u escape";
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape %C" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> String (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !xs)
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "empty input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let to_int = function
    | Int i -> Some i
    | _ -> None

  let to_str = function
    | String s -> Some s
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Global switch and clock                                            *)
(* ------------------------------------------------------------------ *)

type sink =
  | Recording
  | Printer of out_channel
  | Custom of (path:string -> wall_ns:int -> alloc_bytes:int -> unit)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let sinks_ref : sink list ref = ref []

(* [Unix.gettimeofday] is the best stdlib-only approximation of a
   monotonic clock; tests inject a deterministic one instead *)
let real_clock = Unix.gettimeofday
let clock = ref real_clock
let set_clock = function Some c -> clock := c | None -> clock := real_clock

let track_alloc = ref true
let set_track_alloc b = track_alloc := b

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let mu = Mutex.create ()

  let make name =
    Mutex.lock mu;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
    in
    Mutex.unlock mu;
    c

  let add c n =
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

  let incr c = add c 1
  let name c = c.name
  let value c = Atomic.get c.cell

  let reset_all () =
    Mutex.lock mu;
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
    Mutex.unlock mu

  let dump () =
    Mutex.lock mu;
    let all =
      Hashtbl.fold
        (fun name c acc ->
          let v = Atomic.get c.cell in
          if v <> 0 then (name, v) :: acc else acc)
        registry []
    in
    Mutex.unlock mu;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all
end

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

type agg = { mutable a_count : int; mutable a_wall : float; mutable a_alloc : float }

let span_table : (string, agg) Hashtbl.t = Hashtbl.create 32
let span_mu = Mutex.create ()

let record_span path wall alloc =
  let wall_ns = int_of_float (Float.round (wall *. 1e9)) in
  let alloc_bytes = int_of_float (Float.round alloc) in
  List.iter
    (function
      | Recording ->
        Mutex.lock span_mu;
        (match Hashtbl.find_opt span_table path with
        | Some a ->
          a.a_count <- a.a_count + 1;
          a.a_wall <- a.a_wall +. wall;
          a.a_alloc <- a.a_alloc +. alloc
        | None ->
          Hashtbl.add span_table path
            { a_count = 1; a_wall = wall; a_alloc = alloc });
        Mutex.unlock span_mu
      | Printer oc ->
        Printf.fprintf oc "[span] %-40s %.6fs %d B\n%!" path wall alloc_bytes
      | Custom f -> f ~path ~wall_ns ~alloc_bytes)
    !sinks_ref

module Span = struct
  (* each domain tracks its own span stack; the stored strings are the
     already-joined full paths so closing a span is allocation-free *)
  let stack_key : string list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let run ~root name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = Domain.DLS.get stack_key in
      let path =
        match !stack with
        | parent :: _ when not root -> parent ^ "/" ^ name
        | _ -> name
      in
      stack := path :: !stack;
      let a0 = if !track_alloc then Gc.allocated_bytes () else 0.0 in
      let t0 = !clock () in
      Fun.protect
        ~finally:(fun () ->
          let wall = !clock () -. t0 in
          let alloc =
            if !track_alloc then Gc.allocated_bytes () -. a0 else 0.0
          in
          (stack := match !stack with _ :: tl -> tl | [] -> []);
          record_span path wall alloc)
        f
    end

  let with_ name f = run ~root:false name f

  (* for work that executes on engine-spawned domains: anchor at the
     root so every domain's share lands under the same path *)
  let with_root name f = run ~root:true name f

  let current_path () =
    match !(Domain.DLS.get stack_key) with [] -> None | p :: _ -> Some p
end

(* ------------------------------------------------------------------ *)
(* Enable / disable / reset                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.lock span_mu;
  Hashtbl.reset span_table;
  Mutex.unlock span_mu;
  Counter.reset_all ()

let enable ?(sinks = [ Recording ]) () =
  (match sinks with [] -> invalid_arg "Telemetry.enable: no sinks" | _ -> ());
  reset ();
  sinks_ref := sinks;
  Atomic.set enabled_flag true

let disable () =
  Atomic.set enabled_flag false;
  sinks_ref := []

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

type span = { path : string; count : int; wall_ns : int; alloc_bytes : int }
type report = { spans : span list; counters : (string * int) list }

let report () =
  Mutex.lock span_mu;
  let spans =
    Hashtbl.fold
      (fun path a acc ->
        { path;
          count = a.a_count;
          wall_ns = int_of_float (Float.round (a.a_wall *. 1e9));
          alloc_bytes = int_of_float (Float.round a.a_alloc) }
        :: acc)
      span_table []
  in
  Mutex.unlock span_mu;
  { spans = List.sort (fun a b -> String.compare a.path b.path) spans;
    counters = Counter.dump () }

let schema_version = "difftrace-telemetry/1"

let report_to_json r =
  Json.Obj
    [ ("schema", Json.String schema_version);
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [ ("path", Json.String s.path);
                   ("count", Json.Int s.count);
                   ("wall_ns", Json.Int s.wall_ns);
                   ("alloc_bytes", Json.Int s.alloc_bytes) ])
             r.spans) );
      ( "counters",
        Json.List
          (List.map
             (fun (name, value) ->
               Json.Obj
                 [ ("name", Json.String name); ("value", Json.Int value) ])
             r.counters) ) ]

let to_json r = Json.to_string_pretty (report_to_json r)

let report_of_json_value j =
  let get_list what = function
    | Some (Json.List l) -> l
    | _ -> raise (Json.Parse_error ("telemetry report: missing " ^ what))
  in
  let get what f o =
    match Option.bind (Json.member what o) f with
    | Some v -> v
    | None -> raise (Json.Parse_error ("telemetry report: bad field " ^ what))
  in
  (match Option.bind (Json.member "schema" j) Json.to_str with
  | Some v when v = schema_version -> ()
  | Some v -> raise (Json.Parse_error ("unsupported telemetry schema " ^ v))
  | None -> raise (Json.Parse_error "not a telemetry report: no schema"));
  { spans =
      List.map
        (fun o ->
          { path = get "path" Json.to_str o;
            count = get "count" Json.to_int o;
            wall_ns = get "wall_ns" Json.to_int o;
            alloc_bytes = get "alloc_bytes" Json.to_int o })
        (get_list "spans" (Json.member "spans" j));
    counters =
      List.map
        (fun o -> (get "name" Json.to_str o, get "value" Json.to_int o))
        (get_list "counters" (Json.member "counters" j)) }

let report_of_json s = report_of_json_value (Json.of_string s)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 1024 in
  (if r.spans <> [] then
     let rows =
       List.map
         (fun s ->
           let depth =
             String.fold_left
               (fun acc c -> if c = '/' then acc + 1 else acc)
               0 s.path
           in
           let leaf =
             match String.rindex_opt s.path '/' with
             | None -> s.path
             | Some i ->
               String.sub s.path (i + 1) (String.length s.path - i - 1)
           in
           [ String.make (2 * depth) ' ' ^ leaf;
             string_of_int s.count;
             Printf.sprintf "%.3f" (float_of_int s.wall_ns /. 1e6);
             Printf.sprintf "%.1f" (float_of_int s.alloc_bytes /. 1024.0) ])
         r.spans
     in
     Buffer.add_string buf
       (Difftrace_util.Texttable.render
          ~aligns:
            Difftrace_util.Texttable.[ Left; Right; Right; Right ]
          ~headers:[ "Stage"; "Count"; "Wall (ms)"; "Alloc (KiB)" ]
          rows));
  (if r.counters <> [] then
     Buffer.add_string buf
       (Difftrace_util.Texttable.render
          ~aligns:Difftrace_util.Texttable.[ Left; Right ]
          ~headers:[ "Counter"; "Value" ]
          (List.map
             (fun (name, v) -> [ name; string_of_int v ])
             r.counters)));
  if r.spans = [] && r.counters = [] then
    Buffer.add_string buf "(telemetry: nothing recorded)\n";
  Buffer.contents buf
