(** Pluggable ingestion frontends.

    DiffTrace's analysis core (NLR / JSM / diffNLR / vdiff) only
    assumes ordered per-thread event streams; nothing in it cares that
    the seed repo captured them from the MPI simulator. A {e frontend}
    exploits that: it turns some foreign trace format — a CI build log,
    an strace capture, anything line-shaped — into a {!Trace_set.t}
    that the whole pipeline (and every Session operation, CLI
    subcommand and RPC method) can consume.

    Frontends live in a name → frontend table mirroring the workload
    registry, so [difftrace compare a.log b.log --frontend cilog]
    resolves the same way [--workload heat] does.

    {2 The contract}

    Every registered frontend must satisfy the conformance suite
    (see {!Conformance}, [test/test_frontend.ml] and EXTENDING.md):

    - {b total}: [ingest] never raises, on any byte string — malformed
      input produces a typed {!error};
    - {b deterministic}: the same input yields a byte-identical
      {!digest}, whatever runner schedules the per-thread work;
    - {b round-trip stable}: re-ingesting {!t.render} of an ingested
      set reproduces the same digest (a fixed point);
    - {b salvage-compatible}: the produced set survives an
      [Archive.save] / [Archive.load ~salvage:true] round trip
      unchanged. *)

(** Per-thread ingestion work is fanned over a runner, exactly like
    {!Difftrace_parlot.Archive.runner} (the frontend layer cannot
    depend on the engine, so callers inject one). *)
type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

val sequential_runner : runner

type error = {
  fe_frontend : string;
  fe_line : int option;  (** 1-based input line, when the failure has one *)
  fe_reason : string;
}

val error_to_string : error -> string

(** Ingestion refuses single lines longer than this (1 MiB) with a
    typed error instead of buffering them — the guard that keeps a
    100 MB-line fuzz input from becoming a 100 MB symbol. *)
val max_line_bytes : int

type t = {
  name : string;
  description : string;
  ingest :
    runner:runner -> string -> (Difftrace_trace.Trace_set.t, error) result;
      (** raw input bytes -> trace set. Must be total. *)
  render : Difftrace_trace.Trace_set.t -> string;
      (** the canonical textual form of an ingested set; re-ingesting
          it must be a digest fixed point *)
}

(** {2 Registry} *)

(** [register t] adds (or replaces) [t] under [t.name]. *)
val register : t -> unit

val find : string -> t option

(** Registered names, sorted. *)
val known : unit -> string list

(** Registered frontends in name order. *)
val all : unit -> t list

(** {2 Driving a frontend} *)

(** [ingest_string fe s] runs [fe.ingest], additionally converting any
    escaping exception (a conformance violation, but the daemon must
    not die for it) into a typed error. *)
val ingest_string :
  t -> ?runner:runner -> string -> (Difftrace_trace.Trace_set.t, error) result

(** [ingest_file fe path] — {!ingest_string} over the file's bytes;
    unreadable files are a typed error. *)
val ingest_file :
  t -> ?runner:runner -> string -> (Difftrace_trace.Trace_set.t, error) result

(** {2 Canonical digest}

    [digest ts] is a stable hex digest over the complete observable
    content of a trace set — symbol table (in id order), and every
    trace's pid / tid / truncation flag / event stream. Two sets with
    equal digests are indistinguishable to the analysis pipeline; the
    conformance suite's determinism, parity and round-trip properties
    are all stated as digest equalities. *)
val digest : Difftrace_trace.Trace_set.t -> string

(** {2 Directly-follows graph}

    The DFG view of an ingested set: one edge per consecutive pair of
    calls on a thread (the Sankaran-et-al. reading of syscall and I/O
    traces), with edge multiplicities summed across threads. Returned
    in (src, dst) name order. *)
val dfg_edges :
  Difftrace_trace.Trace_set.t -> ((string * string) * int) list

val render_dfg : Difftrace_trace.Trace_set.t -> string

(** {2 Shared line-level helpers for frontend authors} *)

(** [split_lines ~frontend s] splits on ['\n'], drops a trailing ['\r']
    per line, and fails with a typed error on any line longer than
    {!max_line_bytes}. A trailing newline does not produce an empty
    final line. *)
val split_lines :
  frontend:string -> string -> (string array, error) result

(** Strip ANSI escape sequences (CSI and bare two-byte escapes). *)
val strip_ansi : string -> string
