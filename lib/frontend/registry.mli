(** The frontend registry with the built-in frontends installed.

    Resolve frontend names through this module, not {!Frontend.find}
    directly: linking [Registry] is what forces {!Cilog} and
    {!Syscall} to register (OCaml links only the archive members an
    executable actually references, so a registration side effect in a
    module nobody mentions would silently be dropped). *)

val find : string -> Frontend.t option

(** Registered names, sorted. *)
val known : unit -> string list

(** Registered frontends in name order. *)
val all : unit -> Frontend.t list
