(* Executable conformance contract — see conformance.mli. *)

module Archive = Difftrace_parlot.Archive

type violation = {
  vl_property : string;
  vl_detail : string;
}

let violation_to_string v =
  Printf.sprintf "[%s] %s" v.vl_property v.vl_detail

(* evaluate indices high-to-low: still an array in order, but any
   frontend that leans on evaluation order of the per-thread closures
   (e.g. by interning inside them) produces a different digest here *)
let reversed_runner =
  { Frontend.run =
      (fun n f ->
        if n = 0 then [||]
        else begin
          let last = f (n - 1) in
          let a = Array.make n last in
          for i = n - 2 downto 0 do
            a.(i) <- f i
          done;
          a
        end) }

let err_str = Frontend.error_to_string

let check ?(alt_runner = reversed_runner) ?scratch fe input =
  let vs = ref [] in
  let fail vl_property vl_detail =
    vs := { vl_property; vl_detail } :: !vs
  in
  (* totality: the raw ingest function, not the ingest_string wrapper
     that charitably converts escaped exceptions into typed errors *)
  let raw =
    match fe.Frontend.ingest ~runner:Frontend.sequential_runner input with
    | r -> Some r
    | exception exn ->
      fail "totality"
        (Printf.sprintf "ingest raised %s" (Printexc.to_string exn));
      None
  in
  (match raw with
  | None -> ()
  | Some first ->
    (* determinism: a second run over the same bytes must agree *)
    (match (first, Frontend.ingest_string fe input) with
    | Ok a, Ok b ->
      let da = Frontend.digest a and db = Frontend.digest b in
      if da <> db then
        fail "determinism"
          (Printf.sprintf "two ingests disagree: %s vs %s" da db)
    | Error a, Error b ->
      if err_str a <> err_str b then
        fail "determinism"
          (Printf.sprintf "two ingests disagree on the error: %S vs %S"
             (err_str a) (err_str b))
    | Ok _, Error e ->
      fail "determinism" ("second ingest failed where the first succeeded: " ^ err_str e)
    | Error e, Ok _ ->
      fail "determinism" ("second ingest succeeded where the first failed: " ^ err_str e));
    (* runner parity: the schedule must not be observable *)
    (match (first, Frontend.ingest_string fe ~runner:alt_runner input) with
    | Ok a, Ok b ->
      let da = Frontend.digest a and db = Frontend.digest b in
      if da <> db then
        fail "parity"
          (Printf.sprintf "digest depends on the runner: %s vs %s" da db)
    | Error a, Error b ->
      if err_str a <> err_str b then
        fail "parity"
          (Printf.sprintf "error depends on the runner: %S vs %S" (err_str a)
             (err_str b))
    | Ok _, Error e ->
      fail "parity" ("alternate runner failed where sequential succeeded: " ^ err_str e)
    | Error e, Ok _ ->
      fail "parity" ("alternate runner succeeded where sequential failed: " ^ err_str e));
    (match first with
    | Error _ -> ()
    | Ok ts ->
      let d0 = Frontend.digest ts in
      (* round-trip: render then re-ingest is a digest fixed point *)
      (match Frontend.ingest_string fe (fe.Frontend.render ts) with
      | Error e ->
        fail "round-trip" ("re-ingesting the rendered set failed: " ^ err_str e)
      | Ok ts' ->
        let d1 = Frontend.digest ts' in
        if d0 <> d1 then
          fail "round-trip"
            (Printf.sprintf "render/re-ingest is not a fixed point: %s vs %s"
               d0 d1));
      (* salvage compatibility: archive round trip under salvage mode.
         A fresh per-input subdirectory keeps stale trace files from an
         earlier, larger set out of this load. *)
      (match scratch with
      | None -> ()
      | Some base -> (
        let dir =
          Filename.concat base
            ("conf-" ^ Digest.to_hex (Digest.string input))
        in
        match
          let (_ : int) = Archive.save ~dir ts in
          Archive.load ~salvage:true ~dir ()
        with
        | exception exn ->
          fail "salvage"
            (Printf.sprintf "archive round trip raised %s"
               (Printexc.to_string exn))
        | Error e ->
          fail "salvage"
            ("archive round trip failed: " ^ Archive.error_to_string e)
        | Ok { Archive.set; salvaged; _ } ->
          if salvaged <> [] then
            fail "salvage"
              (Printf.sprintf "pristine archive salvaged %d trace(s)"
                 (List.length salvaged));
          let d1 = Frontend.digest set in
          if d1 <> d0 then
            fail "salvage"
              (Printf.sprintf "archive round trip changed the digest: %s vs %s"
                 d0 d1)))));
  List.rev !vs
