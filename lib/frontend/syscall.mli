(** strace-style syscall capture ingestion.

    Each traced process ([\[pid N\]] or leading-pid strace output)
    becomes one thread, renumbered to its first-appearance index so
    two captures of the same program align thread-by-thread whatever
    raw pids the kernel handed out; each syscall becomes a leaf call; signal
    deliveries and exits become [sig:NAME] / [exited] leaves;
    [<unfinished ...>] / [<... name resumed>] pairs become genuinely
    nested calls. A pending unfinished call at end of input marks the
    thread truncated — the same convention the simulator uses for
    deadlocked ranks — so the stacktree / FCA machinery and the
    {!Frontend.dfg_edges} directly-follows view consume the result
    unchanged. *)

val frontend : Frontend.t
