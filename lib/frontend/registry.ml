(* Referencing the built-in frontends here keeps them linked (and
   therefore registered) in every executable that resolves names. *)

let () = Frontend.register Cilog.frontend
let () = Frontend.register Syscall.frontend

let find = Frontend.find
let known = Frontend.known
let all = Frontend.all
