(* strace-capture ingestion: pid -> thread, syscall -> function, the
   directly-follows reading of Sankaran et al. See syscall.mli. *)

open Difftrace_trace

let name = "syscall"

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "[pid 1234] rest" or strace -f's "1234  rest" *)
let split_pid line =
  if starts_with ~prefix:"[pid " line then
    match String.index_opt line ']' with
    | Some i ->
      let num = String.trim (String.sub line 5 (i - 5)) in
      (match int_of_string_opt num with
      | Some pid ->
        let rest =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        Some (pid, rest)
      | None -> None)
    | None -> None
  else
    let n = String.length line in
    let j = ref 0 in
    while !j < n && is_digit line.[!j] do
      incr j
    done;
    if !j > 0 && !j < n && line.[!j] = ' ' then
      match int_of_string_opt (String.sub line 0 !j) with
      | Some pid ->
        Some (pid, String.trim (String.sub line !j (n - !j)))
      | None -> None
    else None

(* a leading "1693246.123" or "14:02:55.001" timestamp token *)
let drop_timestamp rest =
  let n = String.length rest in
  match String.index_opt rest ' ' with
  | None -> rest
  | Some sp ->
    let tok = String.sub rest 0 sp in
    let timestampish =
      String.length tok > 0
      && is_digit tok.[0]
      && String.for_all (fun c -> is_digit c || c = '.' || c = ':') tok
      && (String.contains tok '.' || String.contains tok ':')
    in
    if timestampish then String.trim (String.sub rest sp (n - sp)) else rest

(* the syscall name at the head of the line, if it looks like one *)
let ident_prefix rest =
  let n = String.length rest in
  if n = 0 || not (is_ident_start rest.[0]) then None
  else begin
    let j = ref 1 in
    while !j < n && is_ident rest.[!j] do
      incr j
    done;
    Some (String.sub rest 0 !j, !j)
  end

type parsed =
  | P_leaf of string          (* complete syscall, signal, or exit *)
  | P_unfinished of string    (* name( ... <unfinished ...> *)
  | P_resumed of string       (* <... name resumed> ... *)
  | P_blank
  | P_bad of string

let parse_line line =
  let line = String.trim line in
  if line = "" then P_blank
  else if starts_with ~prefix:"+++ " line then P_leaf "exited"
  else if starts_with ~prefix:"--- " line then begin
    let rest = String.sub line 4 (String.length line - 4) in
    match ident_prefix rest with
    | Some (signame, _) when String.uppercase_ascii signame = signame ->
      P_leaf ("sig:" ^ signame)
    | _ -> P_bad "malformed signal delivery line"
  end
  else if starts_with ~prefix:"<... " line then begin
    let rest = String.sub line 5 (String.length line - 5) in
    match ident_prefix rest with
    | Some (nm, j)
      when starts_with ~prefix:" resumed>"
             (String.sub rest j (String.length rest - j)) ->
      P_resumed nm
    | _ -> P_bad "malformed resumption line"
  end
  else
    match ident_prefix line with
    | Some (nm, j) when j < String.length line && line.[j] = '(' ->
      let tail = String.sub line j (String.length line - j) in
      if
        (* "<unfinished ...>" anywhere after the args opens a pending call *)
        let tl = String.length tail and pl = String.length "<unfinished" in
        let rec scan i =
          i + pl <= tl
          && (String.sub tail i pl = "<unfinished" || scan (i + 1))
        in
        scan 0
      then P_unfinished nm
      else P_leaf nm
    | _ -> P_bad "unrecognized strace line"

type ev = Call of string | Return of string

(* one pid's lines -> (skeleton, truncated) or the first error; pure,
   so pids fan over the runner independently. Signal deliveries (and
   even further unfinished calls) inside an <unfinished ...> window
   nest inside it — real strace emits exactly that shape when a
   handler interrupts a blocking call. *)
let parse_pid (lines : (int * string) array) =
  let out = Difftrace_util.Vec.create () in
  let pending = ref [] in
  let err = ref None in
  let fail lineno reason =
    if !err = None then
      err :=
        Some
          { Frontend.fe_frontend = name;
            fe_line = Some lineno;
            fe_reason = reason }
  in
  Array.iter
    (fun (lineno, line) ->
      if !err = None then
        match parse_line line with
        | P_blank -> ()
        | P_bad reason -> fail lineno reason
        | P_leaf nm ->
          Difftrace_util.Vec.push out (Call nm);
          Difftrace_util.Vec.push out (Return nm)
        | P_unfinished nm ->
          Difftrace_util.Vec.push out (Call nm);
          pending := nm :: !pending
        | P_resumed nm -> (
          match !pending with
          | p :: rest when p = nm ->
            Difftrace_util.Vec.push out (Return nm);
            pending := rest
          | p :: _ ->
            fail lineno
              (Printf.sprintf "resumption of %s but %s is unfinished" nm p)
          | [] ->
            fail lineno
              (Printf.sprintf "resumption of %s with nothing unfinished" nm)))
    lines;
  match !err with
  | Some e -> Error e
  | None -> Ok (Difftrace_util.Vec.to_array out, !pending <> [])

let root = "process"

let ingest ~runner input =
  match Frontend.split_lines ~frontend:name input with
  | Error e -> Error e
  | Ok lines ->
    (* pids in first-appearance order; tids stay 0 *)
    let order = Difftrace_util.Vec.create () in
    let groups : (int, (int * string) Difftrace_util.Vec.t) Hashtbl.t =
      Hashtbl.create 8
    in
    Array.iteri
      (fun i line ->
        let pid, rest =
          match split_pid line with
          | Some (pid, rest) -> (pid, rest)
          | None -> (0, line)
        in
        let rest = drop_timestamp rest in
        let v =
          match Hashtbl.find_opt groups pid with
          | Some v -> v
          | None ->
            let v = Difftrace_util.Vec.create () in
            Hashtbl.add groups pid v;
            Difftrace_util.Vec.push order pid;
            v
        in
        Difftrace_util.Vec.push v (i + 1, rest))
      lines;
    let pids = Difftrace_util.Vec.to_array order in
    let per_pid =
      Array.map
        (fun pid -> Difftrace_util.Vec.to_array (Hashtbl.find groups pid))
        pids
    in
    let results =
      runner.Frontend.run (Array.length pids) (fun i -> parse_pid per_pid.(i))
    in
    (* on multiple failures report the earliest line, whatever order
       the runner finished in *)
    let first_err =
      Array.fold_left
        (fun acc r ->
          match (acc, r) with
          | Some (a : Frontend.error), Error b ->
            if
              Option.value ~default:max_int b.Frontend.fe_line
              < Option.value ~default:max_int a.Frontend.fe_line
            then Some b
            else acc
          | None, Error b -> Some b
          | _, Ok _ -> acc)
        None results
    in
    (match first_err with
    | Some e -> Error e
    | None ->
      let symtab = Symtab.create () in
      let traces =
        Array.to_list
          (Array.mapi
             (fun i r ->
               let skel, truncated =
                 match r with Ok v -> v | Error _ -> assert false
               in
               let body =
                 Array.map
                   (function
                     | Call s -> Event.Call (Symtab.intern symtab s)
                     | Return s -> Event.Return (Symtab.intern symtab s))
                   skel
               in
               let rid = Symtab.intern symtab root in
               let events =
                 Array.concat
                   [ [| Event.Call rid |];
                     body;
                     (if truncated then [||] else [| Event.Return rid |]) ]
               in
               (* dense pid -> thread-index mapping (first-appearance
                  order): raw pids differ between two captures of the
                  same program, and aligned labels are what lets the
                  JSM/diffNLR stage match threads across runs *)
               Trace.make ~pid:i ~tid:0 ~truncated events)
             results)
      in
      Ok (Trace_set.create symtab traces))

(* --- canonical rendering --------------------------------------------- *)

let render ts =
  let symtab = Trace_set.symtab ts in
  let b = Buffer.create 1024 in
  Array.iter
    (fun (tr : Trace.t) ->
      let prefix = Printf.sprintf "[pid %d] " tr.Trace.pid in
      let events = tr.Trace.events in
      let n = Array.length events in
      (* a stack of open calls tells leaves from unfinished calls *)
      let i = ref 0 in
      while !i < n do
        (match events.(!i) with
        | Event.Call id ->
          let nm = Symtab.name symtab id in
          if nm = root then ()
          else if !i + 1 < n && events.(!i + 1) = Event.Return id then begin
            (if nm = "exited" then
               Buffer.add_string b (prefix ^ "+++ exited with 0 +++\n")
             else if starts_with ~prefix:"sig:" nm then
               Buffer.add_string b
                 (prefix ^ "--- "
                 ^ String.sub nm 4 (String.length nm - 4)
                 ^ " {} ---\n")
             else Buffer.add_string b (prefix ^ nm ^ "() = 0\n"));
            incr i
          end
          else begin
            Buffer.add_string b (prefix ^ nm ^ "( <unfinished ...>\n");
            (* the matching Return, if any, renders as a resumption *)
            ()
          end
        | Event.Return id ->
          let nm = Symtab.name symtab id in
          if nm <> root then
            Buffer.add_string b (prefix ^ "<... " ^ nm ^ " resumed> ) = 0\n"));
        incr i
      done)
    (Trace_set.traces ts);
  Buffer.contents b

let frontend =
  { Frontend.name;
    description =
      "strace captures: pid -> thread, syscall -> function, \
       unfinished/resumed nesting, directly-follows-graph view";
    ingest;
    render }
