(* CI/build-log ingestion with log-aware tokenization, in the spirit
   of CiDiff: normalize the volatile parts of log lines (timestamps,
   hashes, paths, counters) so that diffing two pipeline logs
   surfaces structural divergence, not noise. See cilog.mli. *)

open Difftrace_trace

let name = "cilog"

(* --- log-aware tokenization ------------------------------------------ *)

let is_digit c = c >= '0' && c <= '9'

let is_hex c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* a "NN:NN:NN" wall-clock shape anywhere in the token marks it as a
   timestamp (catches ISO-8601, bracketed clocks, bare HH:MM:SS) *)
let has_clock tok =
  let n = String.length tok in
  let at i = tok.[i] in
  let rec go i =
    if i + 8 > n then false
    else if
      is_digit (at i)
      && is_digit (at (i + 1))
      && at (i + 2) = ':'
      && is_digit (at (i + 3))
      && is_digit (at (i + 4))
      && at (i + 5) = ':'
      && is_digit (at (i + 6))
      && is_digit (at (i + 7))
    then true
    else go (i + 1)
  in
  go 0

let numeric_chars = ".,%+-#()"

let is_numeric tok =
  String.length tok > 0
  && String.exists is_digit tok
  && String.for_all
       (fun c -> is_digit c || String.contains numeric_chars c)
       tok

(* "3.2s", "120ms", "45GiB": a short alphabetic unit suffix on a
   numeric core still reads as a counter *)
let is_numeric_with_unit tok =
  let n = String.length tok in
  let rec core i =
    if i > 0
       && n - i < 3
       &&
       let c = tok.[i - 1] in
       (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    then core (i - 1)
    else i
  in
  let i = core n in
  i < n && is_numeric (String.sub tok 0 i)

let classify tok =
  if tok = "" then tok
  else if has_clock tok then "<ts>"
  else if String.length tok >= 8 && String.for_all is_hex tok then "<hex>"
  else if String.contains tok '/' || String.contains tok '\\' then "<path>"
  else if is_numeric tok || is_numeric_with_unit tok then "<n>"
  else tok

let normalize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")
  |> List.map classify
  |> String.concat " "

(* --- structure ------------------------------------------------------- *)

(* docker-compose style interleaving: "name | rest" claims the line
   for stream [name] when the prefix is short, non-empty and
   space-free; only the first '|' splits, so step/log content keeps
   its own pipes *)
let split_stream line =
  match String.index_opt line '|' with
  | None -> ("", line)
  | Some p ->
    let prefix = String.trim (String.sub line 0 p) in
    let rest_start = if p + 1 < String.length line && line.[p + 1] = ' ' then p + 2 else p + 1 in
    let rest = String.sub line rest_start (String.length line - rest_start) in
    if
      prefix <> ""
      && String.length prefix <= 32
      && not (String.contains prefix ' ')
      && p <= 40
    then (prefix, rest)
    else ("", line)

let group_marker = "##[group]"
let endgroup_marker = "##[endgroup]"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* docker build step header: "Step N/M : CMD" *)
let docker_step rest =
  if starts_with ~prefix:"Step " rest then
    match String.index_opt rest ':' with
    | Some i when i + 1 < String.length rest ->
      let head = String.sub rest 0 i in
      if String.contains head '/' then
        Some (String.sub rest (i + 1) (String.length rest - i - 1))
      else None
    | _ -> None
  else None

type ev = Call of string | Return of string

(* one stream's lines -> its event skeleton (names, not ids); pure,
   so streams fan over the runner independently *)
let parse_stream lines =
  let out = Difftrace_util.Vec.create () in
  let open_step = ref None in
  let close_step () =
    match !open_step with
    | Some s ->
      Difftrace_util.Vec.push out (Return s);
      open_step := None
    | None -> ()
  in
  let open_new title =
    close_step ();
    let s = "step:" ^ normalize title in
    Difftrace_util.Vec.push out (Call s);
    open_step := Some s
  in
  Array.iter
    (fun raw ->
      let line = Frontend.strip_ansi raw in
      (* GH-Actions-style logs prefix every line with a timestamp;
         structure markers are detected past it (leaf names keep it,
         normalized to <ts>) *)
      let struct_line =
        let t = String.trim line in
        match String.index_opt t ' ' with
        | Some sp when classify (String.sub t 0 sp) = "<ts>" ->
          String.trim (String.sub t (sp + 1) (String.length t - sp - 1))
        | _ -> t
      in
      if starts_with ~prefix:group_marker struct_line then
        open_new
          (String.sub struct_line (String.length group_marker)
             (String.length struct_line - String.length group_marker))
      else if starts_with ~prefix:endgroup_marker struct_line then
        close_step ()
      else
        match docker_step struct_line with
        | Some cmd -> open_new cmd
        | None ->
          let leaf = normalize line in
          if leaf <> "" then begin
            Difftrace_util.Vec.push out (Call leaf);
            Difftrace_util.Vec.push out (Return leaf)
          end)
    lines;
  close_step ();
  Difftrace_util.Vec.to_array out

let ingest ~runner input =
  match Frontend.split_lines ~frontend:name input with
  | Error e -> Error e
  | Ok lines ->
    (* streams in first-appearance order become pids 0, 1, ... *)
    let order = Difftrace_util.Vec.create () in
    let groups : (string, string Difftrace_util.Vec.t) Hashtbl.t =
      Hashtbl.create 8
    in
    Array.iter
      (fun line ->
        let stream, rest = split_stream line in
        let v =
          match Hashtbl.find_opt groups stream with
          | Some v -> v
          | None ->
            let v = Difftrace_util.Vec.create () in
            Hashtbl.add groups stream v;
            Difftrace_util.Vec.push order stream;
            v
        in
        Difftrace_util.Vec.push v rest)
      lines;
    let streams =
      Array.map
        (fun s -> Difftrace_util.Vec.to_array (Hashtbl.find groups s))
        (Difftrace_util.Vec.to_array order)
    in
    let skeletons =
      runner.Frontend.run (Array.length streams) (fun i ->
          parse_stream streams.(i))
    in
    (* interning is sequential and in stream order, so the symbol
       table (and with it the digest) is schedule-independent; streams
       whose lines all normalize to nothing carry no events and are
       dropped (rendering cannot represent them), with the remaining
       streams renumbered densely *)
    let symtab = Symtab.create () in
    let traces =
      Array.to_list skeletons
      |> List.filter (fun skel -> Array.length skel > 0)
      |> List.mapi (fun pid skel ->
             let events =
               Array.map
                 (function
                   | Call s -> Event.Call (Symtab.intern symtab s)
                   | Return s -> Event.Return (Symtab.intern symtab s))
                 skel
             in
             Trace.make ~pid ~tid:0 ~truncated:false events)
    in
    Ok (Trace_set.create symtab traces)

(* --- canonical rendering --------------------------------------------- *)

(* Streams render as sequential blocks, each line claimed by a "t<pid>"
   prefix; groups re-render as ##[group]/##[endgroup] pairs. Because
   normalization is idempotent and the first '|' always re-splits the
   prefix off, re-ingesting this text reproduces the digest. *)
let render ts =
  let symtab = Trace_set.symtab ts in
  let b = Buffer.create 1024 in
  Array.iter
    (fun (tr : Trace.t) ->
      let prefix = Printf.sprintf "t%d | " tr.Trace.pid in
      let events = tr.Trace.events in
      let n = Array.length events in
      let i = ref 0 in
      while !i < n do
        (match events.(!i) with
        | Event.Call id
          when !i + 1 < n && events.(!i + 1) = Event.Return id ->
          Buffer.add_string b (prefix ^ Symtab.name symtab id ^ "\n");
          incr i
        | Event.Call id ->
          let nm = Symtab.name symtab id in
          let title =
            if starts_with ~prefix:"step:" nm then
              String.sub nm 5 (String.length nm - 5)
            else nm
          in
          Buffer.add_string b (prefix ^ group_marker ^ title ^ "\n")
        | Event.Return _ ->
          Buffer.add_string b (prefix ^ endgroup_marker ^ "\n"));
        incr i
      done)
    (Trace_set.traces ts);
  Buffer.contents b

let frontend =
  { Frontend.name;
    description =
      "CI/build logs: log-aware tokenization (<ts>/<hex>/<path>/<n>), step \
       headers as call boundaries, 'name |' interleaving as threads";
    ingest;
    render }
