(** CI/build-log ingestion (the CiDiff-style frontend).

    A CI log becomes one trace per interleaved stream (docker-compose
    style [name | ...] prefixes; unprefixed lines form the main
    thread). Step headers ([##\[group\]TITLE] /
    [##\[endgroup\]], docker [Step N/M : CMD]) become call
    boundaries; every other line becomes a leaf call whose name is the
    log-aware normalization of the line: ANSI stripped, timestamps
    [<ts>], long hex runs (commit ids, digests) [<hex>], paths
    [<path>] and counters [<n>], so two runs of the same pipeline
    differ only where they genuinely diverge. *)

val frontend : Frontend.t

(** [normalize line] — the log-aware tokenization on one (ANSI-free)
    line; idempotent. Exposed for tests. *)
val normalize : string -> string
