(** The frontend conformance contract, executable.

    [check fe input] runs every property a registered frontend must
    satisfy against one input and returns the violations (empty list =
    conformant on this input):

    - {b totality}: [fe.ingest] itself never raises;
    - {b determinism}: two ingests of the same bytes agree (same digest,
      or the same typed error);
    - {b runner parity}: the digest is identical under the sequential
      runner and under [alt_runner] (callers pass the parallel engine's
      runner; the default exercises an adversarial completion order);
    - {b round-trip}: re-ingesting [fe.render] of a successful ingest
      reproduces the digest — a fixed point;
    - {b salvage}: when [scratch] is given and ingest succeeded, the
      set survives [Archive.save] / [Archive.load ~salvage:true]
      byte-identically with nothing salvaged away. The archive is
      written to a fresh per-input subdirectory of [scratch].

    [difftrace frontend check FILE -F NAME] and the fuzz harness
    ([scripts/frontend_fuzz.sh]) drive exactly this function, so CI,
    qcheck and shell fuzzing all enforce one definition of
    "conformant". *)

type violation = {
  vl_property : string;  (** "totality", "determinism", ... *)
  vl_detail : string;
}

val violation_to_string : violation -> string

(** A runner that evaluates indices in an adversarial (reversed)
    order — the cheapest schedule shake-up that catches accidental
    order dependence without needing the engine. *)
val reversed_runner : Frontend.runner

val check :
  ?alt_runner:Frontend.runner ->
  ?scratch:string ->
  Frontend.t ->
  string ->
  violation list
