(* The frontend interface and registry — see frontend.mli for the
   contract and test/test_frontend.ml for the conformance suite every
   registered frontend must pass. *)

open Difftrace_trace
module Telemetry = Difftrace_obs.Telemetry

let c_ingests = Telemetry.Counter.make "frontend.ingests"
let c_lines = Telemetry.Counter.make "frontend.lines"
let c_events = Telemetry.Counter.make "frontend.events"
let c_errors = Telemetry.Counter.make "frontend.errors"

type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

let sequential_runner = { run = Array.init }

type error = {
  fe_frontend : string;
  fe_line : int option;
  fe_reason : string;
}

let error_to_string e =
  match e.fe_line with
  | Some n ->
    Printf.sprintf "frontend %s: line %d: %s" e.fe_frontend n e.fe_reason
  | None -> Printf.sprintf "frontend %s: %s" e.fe_frontend e.fe_reason

let max_line_bytes = 1 lsl 20

type t = {
  name : string;
  description : string;
  ingest : runner:runner -> string -> (Trace_set.t, error) result;
  render : Trace_set.t -> string;
}

(* --- registry --------------------------------------------------------- *)

(* written at module init and by [register]; lookups only read *)
let tbl : (string, t) Hashtbl.t = Hashtbl.create 8

let register fe =
  if fe.name = "" then invalid_arg "Frontend.register: empty frontend name";
  Hashtbl.replace tbl fe.name fe

let find name = Hashtbl.find_opt tbl name

let known () =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let all () = List.filter_map find (known ())

(* --- driving ---------------------------------------------------------- *)

let ingest_string fe ?(runner = sequential_runner) s =
  Telemetry.Counter.incr c_ingests;
  let r =
    (* a frontend that raises is breaking its contract, but the
       session (and the daemon behind it) must survive the bug *)
    match fe.ingest ~runner s with
    | r -> r
    | exception exn ->
      Error
        { fe_frontend = fe.name;
          fe_line = None;
          fe_reason =
            "frontend bug (uncaught exception): " ^ Printexc.to_string exn }
  in
  (match r with
  | Ok ts -> Telemetry.Counter.add c_events (Trace_set.total_events ts)
  | Error _ -> Telemetry.Counter.incr c_errors);
  r

let ingest_file fe ?runner path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
    Error
      { fe_frontend = fe.name;
        fe_line = None;
        fe_reason = "cannot read " ^ path ^ ": " ^ m }
  | bytes -> ingest_string fe ?runner bytes

(* --- canonical digest ------------------------------------------------- *)

(* Everything the pipeline can observe, length-prefixed so no two
   distinct sets concatenate to the same bytes. *)
let digest ts =
  let b = Buffer.create 4096 in
  Buffer.add_string b "difftrace-frontend-digest 1\n";
  let symtab = Trace_set.symtab ts in
  Buffer.add_string b (Printf.sprintf "symbols %d\n" (Symtab.size symtab));
  Array.iter
    (fun name -> Buffer.add_string b (Printf.sprintf "%d:%s\n" (String.length name) name))
    (Symtab.names symtab);
  let traces = Trace_set.traces ts in
  Buffer.add_string b (Printf.sprintf "threads %d\n" (Array.length traces));
  Array.iter
    (fun (tr : Trace.t) ->
      Buffer.add_string b
        (Printf.sprintf "thread %d %d %b %d\n" tr.Trace.pid tr.Trace.tid
           tr.Trace.truncated (Trace.length tr));
      Array.iter
        (fun ev -> Buffer.add_string b (Printf.sprintf "%d " (Event.encode ev)))
        tr.Trace.events;
      Buffer.add_char b '\n')
    traces;
  let d = Digest.string (Buffer.contents b) in
  Digest.to_hex d

(* --- directly-follows graph ------------------------------------------- *)

let dfg_edges ts =
  let symtab = Trace_set.symtab ts in
  let edges = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Trace.t) ->
      let calls = Trace.call_ids tr in
      for i = 0 to Array.length calls - 2 do
        let key = (Symtab.name symtab calls.(i), Symtab.name symtab calls.(i + 1)) in
        Hashtbl.replace edges key
          (1 + Option.value ~default:0 (Hashtbl.find_opt edges key))
      done)
    (Trace_set.traces ts);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) edges []
  |> List.sort compare

let render_dfg ts =
  let edges = dfg_edges ts in
  Printf.sprintf "directly-follows graph: %d edges\n" (List.length edges)
  ^ Difftrace_util.Texttable.render
      ~headers:[ "From"; "To"; "Count" ]
      (List.map
         (fun ((a, b), n) -> [ a; b; string_of_int n ])
         edges)

(* --- line helpers ----------------------------------------------------- *)

let split_lines ~frontend s =
  let out = Difftrace_util.Vec.create () in
  let n = String.length s in
  let err = ref None in
  let start = ref 0 in
  let lineno = ref 0 in
  let push stop =
    incr lineno;
    let len = stop - !start in
    if len > max_line_bytes then begin
      if !err = None then
        err :=
          Some
            { fe_frontend = frontend;
              fe_line = Some !lineno;
              fe_reason =
                Printf.sprintf "line exceeds %d bytes (%d)" max_line_bytes len }
    end
    else begin
      let len = if len > 0 && s.[stop - 1] = '\r' then len - 1 else len in
      Difftrace_util.Vec.push out (String.sub s !start len)
    end
  in
  let i = ref 0 in
  while !i < n && !err = None do
    if s.[!i] = '\n' then begin
      push !i;
      start := !i + 1
    end;
    incr i
  done;
  match !err with
  | Some e -> Error e
  | None ->
    if !start < n then push n;
    (match !err with
    | Some e -> Error e
    | None ->
      Telemetry.Counter.add c_lines (Difftrace_util.Vec.length out);
      Ok (Difftrace_util.Vec.to_array out))

(* CSI sequences (ESC [ params final-byte) and bare two-byte escapes;
   an unterminated escape at end of input is dropped rather than kept *)
let strip_ansi s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '\027' then
      if !i + 1 < n && s.[!i + 1] = '[' then begin
        let j = ref (!i + 2) in
        while
          !j < n
          && (let c = s.[!j] in
              (c >= '0' && c <= '9') || c = ';' || c = '?' || c = ':')
        do
          incr j
        done;
        (* the final byte, if present, belongs to the sequence *)
        i := if !j < n then !j + 1 else !j
      end
      else i := min n (!i + 2)
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b
