open Difftrace_util

type elem = Sym of int | Loop of { body : int; count : int }

let elem_equal (a : elem) (b : elem) = a = b

module Loop_table = struct
  (* Bodies are elem arrays; [by_body] interns them structurally so the
     same body found in any trace of the execution gets the same ID. *)
  type t = { bodies : elem array Vec.t; by_body : (elem list, int) Hashtbl.t }

  let create () = { bodies = Vec.create (); by_body = Hashtbl.create 64 }
  let size t = Vec.length t.bodies

  let body t id =
    if id < 0 || id >= Vec.length t.bodies then invalid_arg "Loop_table.body";
    Vec.get t.bodies id

  let intern t b =
    let key = Array.to_list b in
    match Hashtbl.find_opt t.by_body key with
    | Some id -> id
    | None ->
      let id = Vec.length t.bodies in
      Vec.push t.bodies (Array.copy b);
      Hashtbl.add t.by_body key id;
      id

  let label id = "L" ^ string_of_int id
end

type t = { elems : elem array; input_length : int }

(* One reduction step over the top of the stack; returns true if the
   stack changed. Two rules, from Procedure 1:
   - extension: a loop sits at depth b+1 and the top b elements are
     isomorphic to its body -> absorb them, incrementing the count;
   - creation: the top [repeats] windows of length b are pairwise
     isomorphic -> replace them by a fresh loop element. *)
let reduce_step ~table ~k ~repeats stack =
  let len = Vec.length stack in
  let exception Changed in
  try
    for b = 1 to k do
      (* extension *)
      (if len >= b + 1 then
         match Vec.peek stack b with
         | Loop { body; count } ->
           let bd = Loop_table.body table body in
           if
             Array.length bd = b
             && (let ok = ref true in
                 for i = 0 to b - 1 do
                   if not (elem_equal bd.(i) (Vec.peek stack (b - 1 - i))) then
                     ok := false
                 done;
                 !ok)
           then begin
             Vec.truncate stack (len - b - 1);
             Vec.push stack (Loop { body; count = count + 1 });
             raise Changed
           end
         | Sym _ -> ());
      (* creation *)
      if len >= repeats * b then begin
        let window w i = Vec.get stack (len - ((w + 1) * b) + i) in
        let all_equal = ref true in
        for w = 1 to repeats - 1 do
          for i = 0 to b - 1 do
            if not (elem_equal (window 0 i) (window w i)) then all_equal := false
          done
        done;
        if !all_equal then begin
          let body = Array.init b (fun i -> window 0 i) in
          let id = Loop_table.intern table body in
          Vec.truncate stack (len - (repeats * b));
          Vec.push stack (Loop { body = id; count = repeats });
          raise Changed
        end
      end
    done;
    false
  with Changed -> true

let of_ids ~table ?(k = 10) ?(repeats = 2) ids =
  if k < 1 then invalid_arg "Nlr.of_ids: k must be >= 1";
  if repeats < 2 then invalid_arg "Nlr.of_ids: repeats must be >= 2";
  let stack = Vec.with_capacity (Array.length ids) in
  Array.iter
    (fun id ->
      Vec.push stack (Sym id);
      while reduce_step ~table ~k ~repeats stack do
        ()
      done)
    ids;
  { elems = Vec.to_array stack; input_length = Array.length ids }

let length t = Array.length t.elems

let reintern ~from ~into t =
  let n = Loop_table.size from in
  let map = Array.make n (-1) in
  let remap_elem = function
    | Sym _ as e -> e
    | Loop { body; count } -> Loop { body = map.(body); count }
  in
  (* A body only references loops created before it, so ascending order
     guarantees [map] is filled for every id a body mentions — and it
     replays [from]'s intern calls in their original order, which is
     what keeps shared-table ids identical to a fully sequential run. *)
  for id = 0 to n - 1 do
    map.(id) <- Loop_table.intern into (Array.map remap_elem (Loop_table.body from id))
  done;
  { t with elems = Array.map remap_elem t.elems }

let expand ~table t =
  let out = Vec.with_capacity t.input_length in
  let rec emit = function
    | Sym id -> Vec.push out id
    | Loop { body; count } ->
      let bd = Loop_table.body table body in
      for _ = 1 to count do
        Array.iter emit bd
      done
  in
  Array.iter emit t.elems;
  Vec.to_array out

let reduction_factor t =
  if Array.length t.elems = 0 then 1.0
  else float_of_int t.input_length /. float_of_int (Array.length t.elems)

let token symtab = function
  | Sym id -> Difftrace_trace.Symtab.name symtab id
  | Loop { body; _ } -> Loop_table.label body

let multiplicity = function Sym _ -> 1 | Loop { count; _ } -> count

let elem_to_string symtab = function
  | Sym id -> Difftrace_trace.Symtab.name symtab id
  | Loop { body; count } -> Printf.sprintf "%s^%d" (Loop_table.label body) count

let to_strings symtab t = Array.to_list (Array.map (elem_to_string symtab) t.elems)

let body_to_string ~table symtab id =
  let bd = Loop_table.body table id in
  "[" ^ String.concat "-" (Array.to_list (Array.map (elem_to_string symtab) bd)) ^ "]"
