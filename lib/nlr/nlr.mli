(** Nested Loop Recognition (paper §III-A).

    Adapts Ketterlin–Clauss nested-loop recognition to function-call
    traces: trace entries are pushed onto a stack of {e elements}
    (function IDs or already-recognized loops); after each push the top
    of the stack is recursively reduced, either {e extending} a loop
    whose body reappears right after it, or {e creating} a loop when
    [repeats] consecutive copies of a window of length ≤ [k] sit on
    top. Recognized loop bodies live in a {!Loop_table} shared by all
    traces of an execution, so the same body gets the same [L]-id in
    every trace — the property Table III and the FCA attributes rely
    on. The representation is lossless: {!expand} returns the exact
    input sequence.

    Complexity is [Θ(k² n)] for input length [n], as in the paper. *)

(** A summarized trace element. *)
type elem =
  | Sym of int  (** a function ID *)
  | Loop of { body : int; count : int }
      (** [count] consecutive repetitions of loop body [body] (an index
          into the execution's loop table) *)

val elem_equal : elem -> elem -> bool

(** The execution-wide table of distinct loop bodies. *)
module Loop_table : sig
  type t

  val create : unit -> t

  (** [size t] is the number of distinct bodies recorded. *)
  val size : t -> int

  (** [body t id] is body [id]. Raises [Invalid_argument] if unknown. *)
  val body : t -> int -> elem array

  (** [intern t b] returns the ID of body [b], registering it if new. *)
  val intern : t -> elem array -> int

  (** [label id] is the paper's display name, ["L0"], ["L1"], … *)
  val label : int -> string
end

(** A summarized (NLR) trace. *)
type t = { elems : elem array; input_length : int }

(** [of_ids ~table ?k ?repeats ids] summarizes a function-ID sequence.
    [k] (default 10) bounds the loop-body window length, as the paper's
    "NLR constant K"; [repeats] (default 2) is how many consecutive
    copies trigger loop creation (Procedure 1 shows 3; 2 is what
    Table III's [L0^2] requires and is the Ketterlin–Clauss default). *)
val of_ids : table:Loop_table.t -> ?k:int -> ?repeats:int -> int array -> t

(** [length t] is the number of elements of the summary. *)
val length : t -> int

(** [reintern ~from ~into t] — re-express a summary built against the
    private table [from] in terms of the table [into], interning
    [from]'s bodies (all of them, in creation order) and rewriting the
    loop IDs of [t] accordingly.

    This is how the pipeline parallelizes summarization without giving
    up determinism: each trace is summarized into its own fresh table
    on any domain, then re-interned into the execution's shared table
    sequentially in trace order. Because a summary never references
    pre-existing shared bodies (its loops all come from its own
    reduction), the local table is a consistent renaming of what direct
    shared-table summarization would have produced, and replaying its
    intern calls in creation order assigns the exact same shared IDs a
    sequential run would. *)
val reintern : from:Loop_table.t -> into:Loop_table.t -> t -> t

(** [expand ~table t] is the original function-ID sequence (losslessness
    witness). *)
val expand : table:Loop_table.t -> t -> int array

(** [reduction_factor t] is [input_length / length] — §V reports 1.92
    (K=10) and 16.74 (K=50) for LULESH. Returns 1.0 for empty input. *)
val reduction_factor : t -> float

(** [elem_to_string symtab e] — ["MPI_Init"] or ["L0^4"]. *)
val elem_to_string : Difftrace_trace.Symtab.t -> elem -> string

(** [token symtab e] — like {!elem_to_string} but without the loop
    count (["L0"]): the FCA attribute name of the element. *)
val token : Difftrace_trace.Symtab.t -> elem -> string

(** [multiplicity e] — 1 for symbols, the iteration count for loops:
    the FCA attribute frequency contribution. *)
val multiplicity : elem -> int

(** [to_strings symtab t] — each element rendered, in order
    (Table III's rows). *)
val to_strings : Difftrace_trace.Symtab.t -> t -> string list

(** [body_to_string ~table symtab id] — a loop body rendered as
    ["[MPI_Send-MPI_Recv]"]. *)
val body_to_string :
  table:Loop_table.t -> Difftrace_trace.Symtab.t -> int -> string
