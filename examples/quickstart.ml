(* Quickstart: the paper's §II walk-through on MPI odd/even sort.

   Runs the sort on the simulator, shows the raw traces (Table II), the
   NLR summaries (Table III), the formal context (Table IV), the
   concept lattice (Fig. 3) and the JSM heatmap (Fig. 4); then injects
   swapBug and dlBug with 16 ranks and lets DiffTrace point at trace 5
   (§II-G), rendering both diffNLRs (Figs. 5 and 6). *)

open Difftrace
module Odd_even = Workloads.Odd_even

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  (* --- a clean 4-rank run (paper Tables II-IV) ---------------------- *)
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let ts = outcome.Runtime.traces in

  section "Raw traces (Table II), MPI + user-code filter";
  let filter =
    Filter.make ~drop_returns:true
      [ Filter.Mpi_all; Filter.Custom "main|oddEvenSort|findPtr" ]
  in
  let shown = Filter.apply_set filter ts in
  Array.iter
    (fun tr ->
      Printf.printf "T%s: %s\n" (Trace.label ~short:true tr)
        (String.concat " ; " (Trace.to_strings (Trace_set.symtab shown) tr)))
    (Trace_set.traces shown);

  section "NLR of the MPI-only traces (Table III), K=10";
  let config = Config.default (* MPI-all filter, sing.noFreq, K=10, ward *) in
  let analysis = Pipeline.analyze config ts in
  Array.iteri
    (fun i (nlr, _) ->
      Printf.printf "T%s: %s\n"
        analysis.Pipeline.labels.(i)
        (String.concat " ; " (Nlr.to_strings analysis.Pipeline.symtab nlr)))
    analysis.Pipeline.nlrs;
  Printf.printf "loop table: %d distinct bodies\n"
    (Nlr.Loop_table.size analysis.Pipeline.loop_table);
  for id = 0 to Nlr.Loop_table.size analysis.Pipeline.loop_table - 1 do
    Printf.printf "  %s = %s\n" (Nlr.Loop_table.label id)
      (Nlr.body_to_string ~table:analysis.Pipeline.loop_table
         analysis.Pipeline.symtab id)
  done;

  section "Formal context (Table IV)";
  print_string (Context.to_table analysis.Pipeline.context);

  section "Concept lattice (Fig. 3, Godin incremental)";
  print_string
    (Lattice.to_string analysis.Pipeline.context
       (Lazy.force analysis.Pipeline.lattice));

  section "Jaccard similarity matrix (Fig. 4)";
  print_string (Jsm.heatmap analysis.Pipeline.jsm);

  (* --- §II-G: swapBug and dlBug with 16 ranks ----------------------- *)
  let np = 16 in
  let normal, _ = Odd_even.run ~np ~fault:Fault.No_fault () in
  let normal = normal.Runtime.traces in

  (* the result-returning session API (what the CLI and the daemon are
     built on); a fresh session per comparison = independent analyses *)
  let report name fault =
    section (Printf.sprintf "%s with %d ranks" name np);
    let faulty_outcome, _ = Odd_even.run ~np ~fault () in
    let faulty = faulty_outcome.Runtime.traces in
    match
      Session.compare (Session.create ()) config
        { Session.cp_normal = Session.Traces normal;
          cp_faulty = Session.Traces faulty;
          cp_diffnlr = None }
    with
    | Error e -> prerr_endline (Session.error_to_string e)
    | Ok r -> (
      Printf.printf "B-score: %.3f\n" r.Session.cp_bscore;
      Printf.printf "suspicious traces: %s\n"
        (String.concat ", "
           (List.map
              (fun (l, s) -> Printf.sprintf "%s (%.2f)" l s)
              (Array.to_list r.Session.cp_suspects
              |> List.filteri (fun i _ -> i < 5))));
      let suspect, _ = r.Session.cp_suspects.(0) in
      match Pipeline.find_diffnlr r.Session.cp_comparison suspect with
      | Ok d ->
        print_string
          (Diffnlr.render
             ~title:(Printf.sprintf "diffNLR(%s) — %s" suspect name)
             d)
      | Error e -> prerr_endline (Pipeline.lookup_error_to_string e))
  in
  report "swapBug (Fig. 5)" (Fault.Swap_send_recv { rank = 5; after_iter = 7 });
  report "dlBug (Fig. 6)" (Fault.Deadlock_recv { rank = 5; after_iter = 7 })
