(* Hung-job triage without a reference run.

   The paper's §II-A observes that "many types of faults may be
   apparent just by analyzing JSM_faulty: processes whose execution got
   truncated will look highly dissimilar to those that terminated
   normally". This example drives that workflow end to end on a
   deadlocked LULESH job:

     1. the job hangs (rank 2 silently skips LagrangeLeapFrog);
     2. the STAT-style stack tree shows where every thread is stuck;
     3. the logical-clock progress report names the least-progressed
        threads (PRODOMETER-style);
     4. JSM triage ranks single-run outliers;
     5. the traces are archived to disk and exported as an OTF2-style
        archive for downstream tooling. *)

open Difftrace
module R = Runtime
module F = Filter
module A = Attributes

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  section "A LULESH job hangs in production (rank 2 skips LagrangeLeapFrog)";
  let outcome =
    Workloads.Lulesh.run ~edge:4 ~cycles:2
      ~fault:(Fault.Skip_function { rank = 2; func = "LagrangeLeapFrog" })
      ()
  in
  Printf.printf "job state: %d of %d threads never terminated\n"
    (List.length outcome.R.deadlocked)
    (Trace_set.cardinal outcome.R.traces);

  section "1. Where is everyone? (STAT-style stack prefix tree)";
  let tree = Stacktree.build outcome.R.traces in
  print_string (Stacktree.render tree);
  Printf.printf "equivalence classes: %d\n"
    (List.length (Stacktree.equivalence_classes tree));

  section "2. Who stopped making progress first? (logical clocks)";
  let entries = Progress.least_progressed outcome in
  print_string (Progress.render (List.filteri (fun i _ -> i < 10) entries));
  (match entries with
  | e :: _ ->
    Printf.printf
      "-> thread %d.%d stalled earliest (Lamport %d): start reading there\n"
      e.Progress.pid e.Progress.tid e.Progress.last_lamport
  | [] -> ());

  section "3. Which traces look unlike the others? (single-run JSM triage)";
  (* the same session API the CLI and the daemon serve; the structured
     entries let the example keep its own compact rendering *)
  let ses = Session.create () in
  let config =
    Config.default
    |> Config.with_filter (F.make [ F.Everything ])
    |> Config.with_attrs { A.granularity = A.Single; freq_mode = A.Actual }
  in
  (match
     Session.triage ses config
       { Session.tg_subject = Session.Traces outcome.R.traces; tg_limit = 8 }
   with
  | Error e -> prerr_endline (Session.error_to_string e)
  | Ok r ->
    print_string
      (Pipeline.render_triage
         (Array.sub r.Session.tg_entries 0
            (min 8 (Array.length r.Session.tg_entries)))));

  section "4. Preserve the evidence";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lulesh_hang" in
  (match
     Session.record ses ~outcome
       { Session.rc_name = None; rc_dir = Some dir; rc_format = Archive.V2 }
   with
  | Error e -> prerr_endline (Session.error_to_string e)
  | Ok r ->
    Printf.printf "archived %d compressed trace files to %s\n" r.Session.rc_files
      dir);
  let otf2 = Otf2.render (Otf2.of_outcome outcome) in
  Printf.printf "OTF2-style archive: %d bytes (%d sync records)\n"
    (String.length otf2)
    (List.length (Otf2.sync_points (Otf2.of_outcome outcome)));

  section "Verdict";
  print_endline
    "The stack tree shows rank 2's master idle while every other rank waits\n\
     inside halo receives or the TimeIncrement Allreduce; the progress report\n\
     and the outlier table both point at process 2 — the rank whose upgrade\n\
     dropped the LagrangeLeapFrog call."
