(* DiffTrace as a playground (paper §II-A): bring your own workload,
   your own fault, your own filters and attributes.

   The workload here is a token-ring pipeline: rank 0 injects tokens,
   every rank transforms and forwards them, rank 0 collects. The
   "upgrade" (our faulty version) makes rank 3 drop every third token —
   a silent semantic change: nothing crashes, the program completes,
   only the result and the looping behaviour change. DiffTrace's
   relative-debugging loop localizes it. *)

open Difftrace
module R = Runtime
module F = Filter
module A = Attributes

let ring ~tokens ~drop_at env =
  Api.call env "main" (fun () ->
      Api.mpi_init env;
      let rank = Api.comm_rank env in
      let np = Api.comm_size env in
      let next = (rank + 1) mod np and prev = (rank + np - 1) mod np in
      Api.call env "pipelineLoop" (fun () ->
          if rank = 0 then begin
            for t = 1 to tokens do
              Api.call env "injectToken" (fun () ->
                  Api.send env ~dst:next [| t |])
            done;
            (* collect whatever survives; a sentinel closes the ring *)
            Api.send env ~dst:next [| -1 |];
            let closed = ref false in
            while not !closed do
              let v = Api.recv env ~src:prev () in
              if v.(0) = -1 then closed := true
              else Api.call env "collectToken" (fun () -> ())
            done
          end
          else begin
            let closed = ref false in
            while not !closed do
              let v = Api.recv env ~src:prev () in
              if v.(0) = -1 then begin
                Api.send env ~dst:next v;
                closed := true
              end
              else begin
                let dropped =
                  match drop_at with
                  | Some (r, modulo) -> r = rank && v.(0) mod modulo = 0
                  | None -> false
                in
                if dropped then Api.call env "auditToken" (fun () -> ())
                else
                  Api.call env "transformToken" (fun () ->
                      Api.send env ~dst:next [| v.(0) * 2 |])
              end
            done
          end);
      Api.mpi_finalize env)

let () =
  let np = 6 and tokens = 12 in
  let normal = R.run ~np ~seed:3 (ring ~tokens ~drop_at:None) in
  let faulty = R.run ~np ~seed:3 (ring ~tokens ~drop_at:(Some (3, 3))) in
  Printf.printf "normal deadlocks: %d, faulty deadlocks: %d (silent bug!)\n"
    (List.length normal.R.deadlocked)
    (List.length faulty.R.deadlocked);

  (* a custom filter keeping only this application's own verbs *)
  let app_filter =
    F.make [ F.Custom "Token$"; F.Mpi_send_recv ]
  in
  let rows =
    Ranking.sweep
      (Ranking.grid ~filters:[ app_filter ]
         ~attrs:
           [ { A.granularity = A.Single; freq_mode = A.Actual };
             { A.granularity = A.Double; freq_mode = A.Actual } ]
         ())
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  print_string (Ranking.render rows);

  let c =
    Pipeline.compare_runs
      (Config.default
      |> Config.with_filter app_filter
      |> Config.with_attrs { A.granularity = A.Single; freq_mode = A.Actual })
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  let suspect, score = c.Pipeline.suspects.(0) in
  Printf.printf "top suspect: rank %s (row change %.2f)\n" suspect score;
  match Pipeline.find_diffnlr c suspect with
  | Ok d ->
    print_string
      (Diffnlr.render
         ~title:(Printf.sprintf "diffNLR(%s) — the dropped tokens" suspect)
         d)
  | Error e -> prerr_endline (Pipeline.lookup_error_to_string e)
