(* LULESH2 study (paper §V): trace statistics of the fault-free run,
   the NLR-constant sweep, and Table IX's ranking for the injected
   skipped-LagrangeLeapFrog fault in rank 2. *)

open Difftrace
module R = Runtime
module Lulesh = Workloads.Lulesh
module F = Filter

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  section "Fault-free LULESH2 (8 ranks x 4 OMP threads)";
  let normal, hydro = Lulesh.simulate ~edge:6 ~cycles:2 ~fault:Fault.No_fault () in
  Format.printf "%a@." Capture.pp_stats normal.R.stats;
  Printf.printf
    "physics: E_int %.4f + E_kin %.4f = %.4f (deposit 3.0), peak pressure \
     %.3f at cell %d, dt %.3f\n"
    hydro.Lulesh.total_internal_energy hydro.Lulesh.total_kinetic_energy
    (hydro.Lulesh.total_internal_energy +. hydro.Lulesh.total_kinetic_energy)
    hydro.Lulesh.max_pressure hydro.Lulesh.shock_cell hydro.Lulesh.final_dt;

  section "NLR summarization vs. the constant K (paper: x1.92 @K=10, x16.74 @K=50)";
  let tr = Trace_set.find_exn normal.R.traces ~pid:0 ~tid:0 in
  let ids = Trace.call_ids tr in
  List.iter
    (fun k ->
      let table = Nlr.Loop_table.create () in
      let nlr = Nlr.of_ids ~table ~k ids in
      Printf.printf "K=%-3d  %6d calls -> %5d NLR elements  (factor %.2f)\n" k
        (Array.length ids) (Nlr.length nlr) (Nlr.reduction_factor nlr))
    [ 2; 10; 50 ];

  section "Fault: rank 2 never calls LagrangeLeapFrog (Table IX)";
  let faulty =
    Lulesh.run ~edge:6 ~cycles:2
      ~fault:(Fault.Skip_function { rank = 2; func = "LagrangeLeapFrog" })
      ()
  in
  Printf.printf "deadlocked threads: %s\n"
    (String.concat ", "
       (List.map (fun (p, t) -> Printf.sprintf "%d.%d" p t) faulty.R.deadlocked));
  let rows =
    Ranking.sweep
      (Ranking.grid ~filters:[ F.make [ F.Everything ] ] ())
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  print_string (Ranking.render rows);

  section "diffNLR of the skipped rank's master thread";
  let c =
    Pipeline.compare_runs
      (Config.default |> Config.with_filter (F.make [ F.Everything ]))
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  match Pipeline.find_diffnlr c "2.0" with
  | Error e -> prerr_endline (Pipeline.lookup_error_to_string e)
  | Ok d ->
    Printf.printf "common elements: %d, differing elements: %d\n"
      (Diffnlr.common_length d)
      (Diffnlr.changed_length d);
    (* the full figure is large; show the first lines *)
    let rendered = Diffnlr.render ~title:"diffNLR(2.0)" d in
    let lines = String.split_on_char '\n' rendered in
    List.iteri (fun i l -> if i < 28 then print_endline l) lines
