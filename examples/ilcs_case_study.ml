(* ILCS case study (paper §IV): TSP-on-ILCS with 8 MPI ranks × 4 OpenMP
   workers, three injected faults, and the corresponding ranking tables
   (Tables VI-VIII) and diffNLRs (Fig. 7). *)

open Difftrace
module R = Runtime
module Ilcs = Workloads.Ilcs
module F = Filter
module A = Attributes

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let render_diffnlr ~title c label =
  match Pipeline.find_diffnlr c label with
  | Ok d -> print_string (Diffnlr.render ~title d)
  | Error e -> prerr_endline (Pipeline.lookup_error_to_string e)

let () =
  let normal_outcome, normal_result = Ilcs.run ~fault:Fault.No_fault () in
  let normal = normal_outcome.R.traces in
  section "Fault-free ILCS-TSP (8 ranks x 4 workers)";
  Printf.printf "global champion tour length: %d\n"
    normal_result.Ilcs.global_champion;
  Printf.printf "master rounds per rank: %s\n"
    (String.concat ","
       (Array.to_list (Array.map string_of_int normal_result.Ilcs.rounds)));

  (* --- Table VI: unprotected shared-memory access in thread 6.4 ----- *)
  section "OpenMP bug: no critical section in thread 4 of process 6 (Table VI)";
  let faulty_outcome, _ =
    Ilcs.run ~fault:(Fault.No_critical { rank = 6; thread = 4 }) ()
  in
  let faulty = faulty_outcome.R.traces in
  List.iter
    (fun r ->
      Printf.printf
        "detected discipline violation: process %d, cell %s, thread %s\n"
        r.R.race_pid r.R.cell_name
        (String.concat "," (List.map string_of_int r.R.tids)))
    faulty_outcome.R.races;
  let mem_filter = F.make [ F.Sys_memory; F.Omp_critical; F.Custom "CPU_Exec" ] in
  let plt_filter = F.make ~drop_plt:false [ F.Sys_memory; F.Custom "CPU_Exec" ] in
  let rows =
    Ranking.sweep
      (Ranking.grid ~filters:[ mem_filter; plt_filter ] ())
      ~normal ~faulty
  in
  print_string (Ranking.render ~max_rows:10 rows);
  let c =
    Pipeline.compare_runs
      (Config.default
      |> Config.with_filter mem_filter
      |> Config.with_attrs { A.granularity = A.Double; freq_mode = A.No_freq })
      ~normal ~faulty
  in
  render_diffnlr ~title:"diffNLR(6.4) — Fig. 7a" c "6.4";

  (* --- Table VII: wrong collective size in process 2 ---------------- *)
  section "MPI bug: wrong Allreduce size in process 2 — deadlock (Table VII)";
  let faulty_outcome, _ =
    Ilcs.run ~fault:(Fault.Wrong_collective_size { rank = 2 }) ()
  in
  let faulty = faulty_outcome.R.traces in
  Printf.printf "deadlocked threads: %s\n"
    (String.concat ", "
       (List.map
          (fun (p, t) -> Printf.sprintf "%d.%d" p t)
          faulty_outcome.R.deadlocked));
  (match faulty_outcome.R.collective_mismatch with
  | Some msg -> Printf.printf "collective diagnostic: %s\n" msg
  | None -> ());
  let mpi_filters =
    [ F.make [ F.Mpi_collectives; F.Custom "CPU_Exec|CPU_Init|memcpy" ];
      F.make [ F.Mpi_all; F.Custom "CPU_Exec|CPU_Init|memcpy" ] ]
  in
  let rows = Ranking.sweep (Ranking.grid ~filters:mpi_filters ()) ~normal ~faulty in
  print_string (Ranking.render ~max_rows:10 rows);
  let c =
    Pipeline.compare_runs
      (Config.default |> Config.with_filter (List.nth mpi_filters 1))
      ~normal ~faulty
  in
  render_diffnlr ~title:"diffNLR(4.0) — Fig. 7b" c "4.0";

  (* --- Table VIII: wrong collective operation in process 0 ---------- *)
  section "MPI bug: MPI_MAX instead of MPI_MIN in process 0 (Table VIII)";
  let faulty_outcome, faulty_result =
    Ilcs.run ~fault:(Fault.Wrong_collective_op { rank = 0 }) ()
  in
  let faulty = faulty_outcome.R.traces in
  Printf.printf
    "run terminates but computes the WORST answer; rounds per rank: %s\n"
    (String.concat ","
       (Array.to_list (Array.map string_of_int faulty_result.Ilcs.rounds)));
  let rows = Ranking.sweep (Ranking.grid ~filters:mpi_filters ()) ~normal ~faulty in
  print_string (Ranking.render ~max_rows:10 rows);
  let c =
    Pipeline.compare_runs
      (Config.default
      |> Config.with_filter (List.nth mpi_filters 1)
      |> Config.with_attrs { A.granularity = A.Single; freq_mode = A.Actual })
      ~normal ~faulty
  in
  render_diffnlr ~title:"diffNLR(5.0) — Fig. 7c" c "5.0"
